#include "cellular/simulator.h"

#include <stdexcept>
#include <vector>

#include "cellular/mobility.h"
#include "cellular/topology.h"

namespace confcall::cellular {

void SimConfig::validate() const {
  if (grid_rows == 0 || grid_cols == 0) {
    throw std::invalid_argument("SimConfig: grid must be at least 1x1");
  }
  if (la_tile_rows == 0 || la_tile_cols == 0) {
    throw std::invalid_argument("SimConfig: LA tiles must be at least 1x1");
  }
  if (num_users == 0) {
    throw std::invalid_argument("SimConfig: num_users must be >= 1");
  }
  if (!(stay_probability >= 0.0 && stay_probability <= 1.0)) {
    throw std::invalid_argument(
        "SimConfig: stay_probability must be in [0, 1]");
  }
  if (!(call_rate >= 0.0 && call_rate <= 1.0)) {
    throw std::invalid_argument("SimConfig: call_rate must be in [0, 1]");
  }
  if (group_min == 0) {
    throw std::invalid_argument("SimConfig: group_min must be >= 1");
  }
  if (group_min > group_max) {
    throw std::invalid_argument("SimConfig: group_min exceeds group_max");
  }
  if (group_max > num_users) {
    throw std::invalid_argument("SimConfig: group_max exceeds num_users");
  }
  faults.validate();
  // Service-level rules (paging rounds, detection model, retry policy,
  // policy parameters) are checked once, in LocationService::Config.
  service_config().validate();
  if (faults.any_enabled() && paging_policy == PagingPolicy::kAdaptive) {
    throw std::invalid_argument(
        "SimConfig: the adaptive policy assumes a fault-free network");
  }
}

LocationService::Config SimConfig::service_config() const {
  LocationService::Config service_config;
  service_config.report_policy = report_policy;
  service_config.timer_period = timer_period;
  service_config.distance_threshold = distance_threshold;
  service_config.paging_policy = paging_policy;
  service_config.profile_kind = profile_kind;
  service_config.max_paging_rounds = max_paging_rounds;
  service_config.laplace_alpha = laplace_alpha;
  service_config.last_seen_horizon = last_seen_horizon;
  service_config.detection_probability = detection_probability;
  service_config.collision_losses = collision_losses;
  service_config.retry = retry;
  return service_config;
}

SimReport run_simulation(const SimConfig& config) {
  config.validate();
  const GridTopology grid(config.grid_rows, config.grid_cols,
                          config.toroidal, config.neighborhood);
  const LocationAreas areas =
      LocationAreas::tiles(grid, config.la_tile_rows, config.la_tile_cols);
  const MarkovMobility mobility(grid, config.stay_probability);
  prob::Rng rng(config.seed);

  // Scatter users uniformly; the service registers everyone on attach.
  std::vector<CellId> user_cells;
  user_cells.reserve(config.num_users);
  for (std::size_t u = 0; u < config.num_users; ++u) {
    user_cells.push_back(
        static_cast<CellId>(rng.next_below(grid.num_cells())));
  }

  LocationService service(grid, areas, mobility, config.service_config(),
                          user_cells);
  // The fault stream is separate from the simulation stream, so a plan
  // with all rates zero leaves the run byte-identical to a fault-free
  // build. The adaptive policy refuses any attached plan (validate()
  // already guarantees its rates are zero), so it runs bare.
  FaultPlan faults(config.faults, grid.num_cells());
  if (config.paging_policy != PagingPolicy::kAdaptive) {
    service.attach_faults(&faults);
  }

  const CallGenerator calls(config.call_rate, config.num_users,
                            config.group_min, config.group_max);
  SimReport report;

  const auto move_users = [&] {
    faults.begin_step();
    for (std::size_t u = 0; u < config.num_users; ++u) {
      user_cells[u] = mobility.step(user_cells[u], rng);
      if (service.observe_move(static_cast<UserId>(u), user_cells[u])) {
        ++report.reports_sent;
      }
    }
    service.tick();
  };

  for (std::size_t t = 0; t < config.warmup_steps; ++t) move_users();
  for (std::size_t t = 0; t < config.steps; ++t) {
    move_users();
    const CallEvent event = calls.maybe_call(rng);
    if (event.participants.empty()) continue;

    std::vector<CellId> true_cells;
    true_cells.reserve(event.participants.size());
    for (const UserId user : event.participants) {
      true_cells.push_back(user_cells[user]);
    }
    const LocationService::LocateOutcome outcome =
        service.locate(event.participants, true_cells, rng);

    ++report.calls_served;
    report.cells_paged_total += outcome.cells_paged;
    report.fallback_pages += outcome.fallback_pages;
    report.missed_detections += outcome.missed_detections;
    report.outage_pages += outcome.outage_pages;
    report.dropped_rounds += outcome.dropped_rounds;
    report.retries_total += outcome.retries;
    report.backoff_rounds += outcome.backoff_rounds;
    report.forced_registrations += outcome.forced_registrations;
    if (outcome.degraded) ++report.calls_degraded;
    if (outcome.abandoned) ++report.calls_abandoned;
    if (outcome.budget_exhausted) ++report.budget_exhaustions;
    report.pages_per_call.add(static_cast<double>(outcome.cells_paged));
    report.rounds_per_call.add(static_cast<double>(outcome.rounds_used));
  }
  report.steps = config.warmup_steps + config.steps;
  report.reports_lost = service.reports_lost();
  report.faults_injected = faults.stats();
  return report;
}

}  // namespace confcall::cellular
