#include "cellular/simulator.h"

#include <stdexcept>
#include <vector>

#include "cellular/mobility.h"
#include "cellular/topology.h"

namespace confcall::cellular {

SimReport run_simulation(const SimConfig& config) {
  if (config.num_users == 0) {
    throw std::invalid_argument("SimConfig: zero users");
  }
  const GridTopology grid(config.grid_rows, config.grid_cols,
                          config.toroidal, config.neighborhood);
  const LocationAreas areas =
      LocationAreas::tiles(grid, config.la_tile_rows, config.la_tile_cols);
  const MarkovMobility mobility(grid, config.stay_probability);
  prob::Rng rng(config.seed);

  // Scatter users uniformly; the service registers everyone on attach.
  std::vector<CellId> user_cells;
  user_cells.reserve(config.num_users);
  for (std::size_t u = 0; u < config.num_users; ++u) {
    user_cells.push_back(
        static_cast<CellId>(rng.next_below(grid.num_cells())));
  }

  LocationService::Config service_config;
  service_config.report_policy = config.report_policy;
  service_config.timer_period = config.timer_period;
  service_config.distance_threshold = config.distance_threshold;
  service_config.paging_policy = config.paging_policy;
  service_config.profile_kind = config.profile_kind;
  service_config.max_paging_rounds = config.max_paging_rounds;
  service_config.laplace_alpha = config.laplace_alpha;
  service_config.last_seen_horizon = config.last_seen_horizon;
  service_config.detection_probability = config.detection_probability;
  service_config.collision_losses = config.collision_losses;
  service_config.max_recovery_sweeps = config.max_recovery_sweeps;
  LocationService service(grid, areas, mobility, service_config,
                          user_cells);

  const CallGenerator calls(config.call_rate, config.num_users,
                            config.group_min, config.group_max);
  SimReport report;

  const auto move_users = [&] {
    for (std::size_t u = 0; u < config.num_users; ++u) {
      user_cells[u] = mobility.step(user_cells[u], rng);
      if (service.observe_move(static_cast<UserId>(u), user_cells[u])) {
        ++report.reports_sent;
      }
    }
    service.tick();
  };

  for (std::size_t t = 0; t < config.warmup_steps; ++t) move_users();
  for (std::size_t t = 0; t < config.steps; ++t) {
    move_users();
    const CallEvent event = calls.maybe_call(rng);
    if (event.participants.empty()) continue;

    std::vector<CellId> true_cells;
    true_cells.reserve(event.participants.size());
    for (const UserId user : event.participants) {
      true_cells.push_back(user_cells[user]);
    }
    const LocationService::LocateOutcome outcome =
        service.locate(event.participants, true_cells, rng);

    ++report.calls_served;
    report.cells_paged_total += outcome.cells_paged;
    report.fallback_pages += outcome.fallback_pages;
    report.missed_detections += outcome.missed_detections;
    report.pages_per_call.add(static_cast<double>(outcome.cells_paged));
    report.rounds_per_call.add(static_cast<double>(outcome.rounds_used));
  }
  report.steps = config.warmup_steps + config.steps;
  return report;
}

}  // namespace confcall::cellular
