#include "cellular/simulator.h"

#include <stdexcept>
#include <vector>

#include "cellular/mobility.h"
#include "cellular/topology.h"
#include "prob/rng.h"
#include "support/thread_pool.h"

namespace confcall::cellular {

void SimConfig::validate() const {
  if (grid_rows == 0 || grid_cols == 0) {
    throw std::invalid_argument("SimConfig: grid must be at least 1x1");
  }
  if (la_tile_rows == 0 || la_tile_cols == 0) {
    throw std::invalid_argument("SimConfig: LA tiles must be at least 1x1");
  }
  if (num_users == 0) {
    throw std::invalid_argument("SimConfig: num_users must be >= 1");
  }
  if (!(stay_probability >= 0.0 && stay_probability <= 1.0)) {
    throw std::invalid_argument(
        "SimConfig: stay_probability must be in [0, 1]");
  }
  if (!(call_rate >= 0.0 && call_rate <= 1.0)) {
    throw std::invalid_argument("SimConfig: call_rate must be in [0, 1]");
  }
  if (group_min == 0) {
    throw std::invalid_argument("SimConfig: group_min must be >= 1");
  }
  if (group_min > group_max) {
    throw std::invalid_argument("SimConfig: group_min exceeds group_max");
  }
  if (group_max > num_users) {
    throw std::invalid_argument("SimConfig: group_max exceeds num_users");
  }
  faults.validate();
  // Service-level rules (paging rounds, detection model, retry policy,
  // policy parameters) are checked once, in LocationService::Config.
  service_config().validate();
  if (faults.any_enabled() && paging_policy == PagingPolicy::kAdaptive) {
    throw std::invalid_argument(
        "SimConfig: the adaptive policy assumes a fault-free network");
  }
}

LocationService::Config SimConfig::service_config() const {
  LocationService::Config service_config;
  service_config.report_policy = report_policy;
  service_config.timer_period = timer_period;
  service_config.distance_threshold = distance_threshold;
  service_config.paging_policy = paging_policy;
  service_config.profile_kind = profile_kind;
  service_config.max_paging_rounds = max_paging_rounds;
  service_config.laplace_alpha = laplace_alpha;
  service_config.last_seen_horizon = last_seen_horizon;
  service_config.detection_probability = detection_probability;
  service_config.collision_losses = collision_losses;
  service_config.retry = retry;
  service_config.enable_plan_cache = enable_plan_cache;
  return service_config;
}

void SimReport::merge(const SimReport& other) {
  steps += other.steps;
  calls_served += other.calls_served;
  reports_sent += other.reports_sent;
  cells_paged_total += other.cells_paged_total;
  fallback_pages += other.fallback_pages;
  missed_detections += other.missed_detections;
  reports_lost += other.reports_lost;
  outage_pages += other.outage_pages;
  dropped_rounds += other.dropped_rounds;
  retries_total += other.retries_total;
  backoff_rounds += other.backoff_rounds;
  calls_degraded += other.calls_degraded;
  calls_abandoned += other.calls_abandoned;
  forced_registrations += other.forced_registrations;
  budget_exhaustions += other.budget_exhaustions;
  faults_injected.outages_started += other.faults_injected.outages_started;
  faults_injected.reports_dropped += other.faults_injected.reports_dropped;
  faults_injected.rounds_dropped += other.faults_injected.rounds_dropped;
  plan_cache_hits += other.plan_cache_hits;
  plan_cache_misses += other.plan_cache_misses;
  pages_per_call.merge(other.pages_per_call);
  rounds_per_call.merge(other.rounds_per_call);
}

SimReport run_simulation(const SimConfig& config) {
  config.validate();
  const GridTopology grid(config.grid_rows, config.grid_cols,
                          config.toroidal, config.neighborhood);
  const LocationAreas areas =
      LocationAreas::tiles(grid, config.la_tile_rows, config.la_tile_cols);
  const MarkovMobility mobility(grid, config.stay_probability);
  prob::Rng rng(config.seed);

  // Scatter users uniformly; the service registers everyone on attach.
  std::vector<CellId> user_cells;
  user_cells.reserve(config.num_users);
  for (std::size_t u = 0; u < config.num_users; ++u) {
    user_cells.push_back(
        static_cast<CellId>(rng.next_below(grid.num_cells())));
  }

  LocationService service(grid, areas, mobility, config.service_config(),
                          user_cells);
  // The fault stream is separate from the simulation stream, so a plan
  // with all rates zero leaves the run byte-identical to a fault-free
  // build. The adaptive policy refuses any attached plan (validate()
  // already guarantees its rates are zero), so it runs bare.
  FaultPlan faults(config.faults, grid.num_cells());
  if (config.paging_policy != PagingPolicy::kAdaptive) {
    service.attach_faults(&faults);
  }

  const CallGenerator calls(config.call_rate, config.num_users,
                            config.group_min, config.group_max);
  SimReport report;

  const auto move_users = [&] {
    faults.begin_step();
    for (std::size_t u = 0; u < config.num_users; ++u) {
      user_cells[u] = mobility.step(user_cells[u], rng);
      if (service.observe_move(static_cast<UserId>(u), user_cells[u])) {
        ++report.reports_sent;
      }
    }
    service.tick();
  };

  for (std::size_t t = 0; t < config.warmup_steps; ++t) move_users();
  for (std::size_t t = 0; t < config.steps; ++t) {
    move_users();
    const CallEvent event = calls.maybe_call(rng);
    if (event.participants.empty()) continue;

    std::vector<CellId> true_cells;
    true_cells.reserve(event.participants.size());
    for (const UserId user : event.participants) {
      true_cells.push_back(user_cells[user]);
    }
    const LocationService::LocateOutcome outcome =
        service.locate(event.participants, true_cells, rng);

    ++report.calls_served;
    report.cells_paged_total += outcome.cells_paged;
    report.fallback_pages += outcome.fallback_pages;
    report.missed_detections += outcome.missed_detections;
    report.outage_pages += outcome.outage_pages;
    report.dropped_rounds += outcome.dropped_rounds;
    report.retries_total += outcome.retries;
    report.backoff_rounds += outcome.backoff_rounds;
    report.forced_registrations += outcome.forced_registrations;
    if (outcome.degraded) ++report.calls_degraded;
    if (outcome.abandoned) ++report.calls_abandoned;
    if (outcome.budget_exhausted) ++report.budget_exhaustions;
    report.pages_per_call.add(static_cast<double>(outcome.cells_paged));
    report.rounds_per_call.add(static_cast<double>(outcome.rounds_used));
  }
  report.steps = config.warmup_steps + config.steps;
  report.reports_lost = service.reports_lost();
  report.faults_injected = faults.stats();
  report.plan_cache_hits = service.plan_cache_stats().hits;
  report.plan_cache_misses = service.plan_cache_stats().misses;
  return report;
}

SimBatchReport run_simulation_batch(const SimConfig& base,
                                    std::size_t replications,
                                    std::size_t num_threads) {
  if (replications == 0) {
    throw std::invalid_argument("run_simulation_batch: zero replications");
  }
  base.validate();  // fail fast on the calling thread, not inside a worker

  SimBatchReport batch;
  batch.replications = replications;
  batch.runs.resize(replications);
  const support::ThreadPool pool(num_threads);
  pool.parallel_for(replications, [&](std::size_t r) {
    SimConfig config = base;
    config.seed = prob::mix_seed(base.seed, r);
    config.faults.seed = prob::mix_seed(base.faults.seed, r);
    batch.runs[r] = run_simulation(config);
  });
  for (const SimReport& run : batch.runs) batch.aggregate.merge(run);
  return batch;
}

}  // namespace confcall::cellular
