#include "cellular/simulator.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "cellular/mobility.h"
#include "cellular/topology.h"
#include "core/planner.h"
#include "core/resilient_planner.h"
#include "prob/rng.h"
#include "support/thread_pool.h"

namespace confcall::cellular {

void OverloadConfig::validate() const {
  if (!enabled) return;
  admission.validate();
  breaker.validate();
  if (round_duration_ns == 0) {
    throw std::invalid_argument(
        "OverloadConfig: round_duration_ns must be >= 1");
  }
  if (step_duration_ns == 0) {
    throw std::invalid_argument(
        "OverloadConfig: step_duration_ns must be >= 1");
  }
  if (resilient_planner && planner_node_limit == 0) {
    throw std::invalid_argument(
        "OverloadConfig: planner_node_limit must be >= 1");
  }
  if (slo.enabled) slo.validate();
}

void SimConfig::validate() const {
  if (grid_rows == 0 || grid_cols == 0) {
    throw std::invalid_argument("SimConfig: grid must be at least 1x1");
  }
  if (la_tile_rows == 0 || la_tile_cols == 0) {
    throw std::invalid_argument("SimConfig: LA tiles must be at least 1x1");
  }
  if (num_users == 0) {
    throw std::invalid_argument("SimConfig: num_users must be >= 1");
  }
  if (!(stay_probability >= 0.0 && stay_probability <= 1.0)) {
    throw std::invalid_argument(
        "SimConfig: stay_probability must be in [0, 1]");
  }
  if (!(call_rate >= 0.0 && call_rate <= 1.0)) {
    throw std::invalid_argument("SimConfig: call_rate must be in [0, 1]");
  }
  if (group_min == 0) {
    throw std::invalid_argument("SimConfig: group_min must be >= 1");
  }
  if (group_min > group_max) {
    throw std::invalid_argument("SimConfig: group_min exceeds group_max");
  }
  if (group_max > num_users) {
    throw std::invalid_argument("SimConfig: group_max exceeds num_users");
  }
  faults.validate();
  burst.validate();
  overload.validate();
  // Service-level rules (paging rounds, detection model, retry policy,
  // policy parameters) are checked once, in LocationService::Config.
  service_config().validate();
  if (faults.any_enabled() && paging_policy == PagingPolicy::kAdaptive) {
    throw std::invalid_argument(
        "SimConfig: the adaptive policy assumes a fault-free network");
  }
  if (overload.enabled && paging_policy == PagingPolicy::kAdaptive) {
    throw std::invalid_argument(
        "SimConfig: the adaptive policy assumes the full delay budget "
        "(no admission control)");
  }
}

LocationService::Config SimConfig::service_config() const {
  LocationService::Config service_config;
  service_config.report_policy = report_policy;
  service_config.timer_period = timer_period;
  service_config.distance_threshold = distance_threshold;
  service_config.paging_policy = paging_policy;
  service_config.profile_kind = profile_kind;
  service_config.max_paging_rounds = max_paging_rounds;
  service_config.laplace_alpha = laplace_alpha;
  service_config.last_seen_horizon = last_seen_horizon;
  service_config.detection_probability = detection_probability;
  service_config.collision_losses = collision_losses;
  service_config.retry = retry;
  service_config.enable_plan_cache = enable_plan_cache;
  return service_config;
}

std::size_t SimReport::rounds_percentile(double p) const noexcept {
  std::uint64_t total = 0;
  for (const std::uint64_t count : rounds_histogram) total += count;
  if (total == 0) return 0;
  const auto target = static_cast<std::uint64_t>(
      p * static_cast<double>(total) + 0.5);
  std::uint64_t seen = 0;
  for (std::size_t r = 0; r < rounds_histogram.size(); ++r) {
    seen += rounds_histogram[r];
    if (seen >= target) return r;
  }
  return rounds_histogram.size() - 1;
}

void SimReport::merge(const SimReport& other) {
  steps += other.steps;
  calls_arrived += other.calls_arrived;
  calls_served += other.calls_served;
  calls_completed += other.calls_completed;
  calls_shed += other.calls_shed;
  calls_degraded_admit += other.calls_degraded_admit;
  calls_deadline_limited += other.calls_deadline_limited;
  breaker_trips += other.breaker_trips;
  breaker_skips += other.breaker_skips;
  planner_failovers += other.planner_failovers;
  health_transitions += other.health_transitions;
  bursts_entered += other.bursts_entered;
  slo_control_steps += other.slo_control_steps;
  slo_breaches += other.slo_breaches;
  slo_pre_breach_signals += other.slo_pre_breach_signals;
  if (rounds_histogram.size() < other.rounds_histogram.size()) {
    rounds_histogram.resize(other.rounds_histogram.size(), 0);
  }
  for (std::size_t r = 0; r < other.rounds_histogram.size(); ++r) {
    rounds_histogram[r] += other.rounds_histogram[r];
  }
  reports_sent += other.reports_sent;
  cells_paged_total += other.cells_paged_total;
  fallback_pages += other.fallback_pages;
  missed_detections += other.missed_detections;
  reports_lost += other.reports_lost;
  outage_pages += other.outage_pages;
  dropped_rounds += other.dropped_rounds;
  retries_total += other.retries_total;
  backoff_rounds += other.backoff_rounds;
  calls_degraded += other.calls_degraded;
  calls_abandoned += other.calls_abandoned;
  forced_registrations += other.forced_registrations;
  budget_exhaustions += other.budget_exhaustions;
  faults_injected.outages_started += other.faults_injected.outages_started;
  faults_injected.reports_dropped += other.faults_injected.reports_dropped;
  faults_injected.rounds_dropped += other.faults_injected.rounds_dropped;
  plan_cache_hits += other.plan_cache_hits;
  plan_cache_misses += other.plan_cache_misses;
  pages_per_call.merge(other.pages_per_call);
  rounds_per_call.merge(other.rounds_per_call);
  metrics.merge(other.metrics);
}

SimReport run_simulation(const SimConfig& config) {
  config.validate();
  const GridTopology grid(config.grid_rows, config.grid_cols,
                          config.toroidal, config.neighborhood);
  const LocationAreas areas =
      LocationAreas::tiles(grid, config.la_tile_rows, config.la_tile_cols);
  const MarkovMobility mobility(grid, config.stay_probability);
  prob::Rng rng(config.seed);

  // Scatter users uniformly; the service registers everyone on attach.
  std::vector<CellId> user_cells;
  user_cells.reserve(config.num_users);
  for (std::size_t u = 0; u < config.num_users; ++u) {
    user_cells.push_back(
        static_cast<CellId>(rng.next_below(grid.num_cells())));
  }

  // The virtual clock: everything time-driven (token refill, deadlines,
  // breaker cooldowns) reads it, so the run is deterministic regardless
  // of wall-clock speed or thread placement.
  support::ManualClock clock;
  const OverloadConfig& overload = config.overload;
  // The per-run registry (collect_metrics, or the SLO controller's
  // sensor). Declared before the planner and service so the handles
  // they hold never outlive it.
  const bool slo_enabled = overload.enabled && overload.slo.enabled;
  std::unique_ptr<support::MetricRegistry> registry;
  if (config.collect_metrics || slo_enabled) {
    registry = std::make_unique<support::MetricRegistry>();
  }
  std::unique_ptr<core::ResilientPlanner> resilient;
  std::optional<support::AdmissionController> admission;
  LocationService::Config service_cfg = config.service_config();
  if (registry) service_cfg.metrics = ServiceMetrics::create(*registry);
  if (overload.enabled) {
    if (overload.resilient_planner) {
      std::vector<std::unique_ptr<core::Planner>> chain;
      chain.push_back(std::make_unique<core::TypedExactPlanner>(
          core::Objective::all_of(), overload.planner_node_limit));
      chain.push_back(std::make_unique<core::GreedyPlanner>());
      chain.push_back(std::make_unique<core::BlanketPlanner>());
      resilient = std::make_unique<core::ResilientPlanner>(
          std::move(chain), core::ResilientPlanner::Budget{0.0}, clock,
          overload.breaker, registry.get());
      service_cfg.planner = resilient.get();
    }
    service_cfg.clock = &clock;
    service_cfg.round_duration_ns = overload.round_duration_ns;
    admission.emplace(overload.admission, clock);
    if (registry) admission->bind_metrics(*registry);
  }
  // The feedback controller closes the loop AFTER every sensor series
  // is registered, so its baseline snapshot already covers them.
  std::unique_ptr<support::SloController> slo;
  if (slo_enabled) {
    slo = std::make_unique<support::SloController>(
        overload.slo, *registry, *admission, clock,
        overload.round_duration_ns);
    if (resilient) {
      for (std::size_t i = 0; i + 1 < resilient->num_tiers(); ++i) {
        slo->add_breaker(&resilient->mutable_breaker(i));
      }
    }
    slo->bind_metrics(*registry);
  }

  LocationService service(grid, areas, mobility, service_cfg, user_cells);
  // The fault stream is separate from the simulation stream, so a plan
  // with all rates zero leaves the run byte-identical to a fault-free
  // build. The adaptive policy refuses any attached plan (validate()
  // already guarantees its rates are zero), so it runs bare.
  FaultPlan faults(config.faults, grid.num_cells());
  if (config.paging_policy != PagingPolicy::kAdaptive) {
    service.attach_faults(&faults);
  }

  // Arrival workload: the classic Bernoulli stream, or the Markov-
  // modulated on/off stream when bursts are enabled (burst rates then
  // replace call_rate).
  const CallGenerator calls(config.call_rate, config.num_users,
                            config.group_min, config.group_max);
  std::optional<BurstyCallGenerator> bursty;
  if (config.burst.enabled) {
    bursty.emplace(config.burst, config.num_users, config.group_min,
                   config.group_max);
  }
  SimReport report;

  const auto move_users = [&] {
    clock.advance(overload.step_duration_ns);
    faults.begin_step();
    for (std::size_t u = 0; u < config.num_users; ++u) {
      user_cells[u] = mobility.step(user_cells[u], rng);
      if (service.observe_move(static_cast<UserId>(u), user_cells[u])) {
        ++report.reports_sent;
      }
    }
    service.tick();
    // Control steps land on the virtual clock's period grid, so the
    // loop is as deterministic as the rest of the run.
    if (slo) slo->maybe_step();
  };

  // One traffic step: draw an arrival, run it through admission and the
  // locate path. `record` gates every SimReport write so warmup traffic
  // (config.warmup_calls) exercises the full stack — draining buckets,
  // tripping breakers, feeding the SLO controller — without polluting
  // the measured window.
  const auto place_call = [&](bool record) {
    const CallEvent event =
        bursty ? bursty->maybe_call(rng) : calls.maybe_call(rng);
    if (event.participants.empty()) return;
    if (record) ++report.calls_arrived;

    LocationService::LocateContext context;
    if (admission) {
      const support::AdmissionController::Decision decision = admission->admit(
          static_cast<double>(event.participants.size()));
      if (decision == support::AdmissionController::Decision::kShed) {
        if (record) ++report.calls_shed;
        return;
      }
      if (decision == support::AdmissionController::Decision::kAdmitDegraded) {
        context.plan_cheap = true;
        if (record) ++report.calls_degraded_admit;
      }
      if (overload.call_deadline_ns != 0) {
        context.deadline =
            support::Deadline::after(overload.call_deadline_ns, clock);
      }
    }

    std::vector<CellId> true_cells;
    true_cells.reserve(event.participants.size());
    for (const UserId user : event.participants) {
      true_cells.push_back(user_cells[user]);
    }
    // Served through the batch API (a batch of one arrival per step):
    // locate_many is outcome-identical to locate() by contract, so the
    // report is unchanged while every simulated call exercises the same
    // entry point the batched HTTP path uses.
    const LocationService::LocateRequest request{event.participants,
                                                 true_cells, context};
    const LocationService::LocateOutcome outcome =
        service.locate_many({&request, 1}, rng).front();
    if (!record) return;

    ++report.calls_served;
    if (!outcome.abandoned) ++report.calls_completed;
    if (outcome.deadline_limited) ++report.calls_deadline_limited;
    if (report.rounds_histogram.size() <= outcome.rounds_used) {
      report.rounds_histogram.resize(outcome.rounds_used + 1, 0);
    }
    ++report.rounds_histogram[outcome.rounds_used];
    report.cells_paged_total += outcome.cells_paged;
    report.fallback_pages += outcome.fallback_pages;
    report.missed_detections += outcome.missed_detections;
    report.outage_pages += outcome.outage_pages;
    report.dropped_rounds += outcome.dropped_rounds;
    report.retries_total += outcome.retries;
    report.backoff_rounds += outcome.backoff_rounds;
    report.forced_registrations += outcome.forced_registrations;
    if (outcome.degraded) ++report.calls_degraded;
    if (outcome.abandoned) ++report.calls_abandoned;
    if (outcome.budget_exhausted) ++report.budget_exhaustions;
    report.pages_per_call.add(static_cast<double>(outcome.cells_paged));
    report.rounds_per_call.add(static_cast<double>(outcome.rounds_used));
  };

  for (std::size_t t = 0; t < config.warmup_steps; ++t) {
    move_users();
    if (config.warmup_calls) place_call(/*record=*/false);
  }
  for (std::size_t t = 0; t < config.steps; ++t) {
    move_users();
    place_call(/*record=*/true);
  }
  report.steps = config.warmup_steps + config.steps;
  if (resilient) {
    report.breaker_trips =
        static_cast<std::size_t>(resilient->breaker_trips());
    report.breaker_skips =
        static_cast<std::size_t>(resilient->breaker_skips());
    report.planner_failovers = static_cast<std::size_t>(
        resilient->failovers());
  }
  if (admission) {
    report.health_transitions =
        static_cast<std::size_t>(admission->health_transitions());
  }
  if (slo) {
    report.slo_control_steps =
        static_cast<std::size_t>(slo->control_steps());
    report.slo_breaches = static_cast<std::size_t>(slo->breaches());
    report.slo_pre_breach_signals =
        static_cast<std::size_t>(slo->pre_breach_signals());
  }
  if (bursty) report.bursts_entered = bursty->bursts_entered();
  report.reports_lost = service.reports_lost();
  report.faults_injected = faults.stats();
  report.plan_cache_hits = service.plan_cache_stats().hits;
  report.plan_cache_misses = service.plan_cache_stats().misses;
  if (registry) report.metrics = registry->snapshot();
  return report;
}

SimBatchReport run_simulation_batch(const SimConfig& base,
                                    std::size_t replications,
                                    std::size_t num_threads) {
  if (replications == 0) {
    throw std::invalid_argument("run_simulation_batch: zero replications");
  }
  base.validate();  // fail fast on the calling thread, not inside a worker

  SimBatchReport batch;
  batch.replications = replications;
  batch.runs.resize(replications);
  const support::ThreadPool pool(num_threads);
  pool.parallel_for(replications, [&](std::size_t r) {
    SimConfig config = base;
    config.seed = prob::mix_seed(base.seed, r);
    config.faults.seed = prob::mix_seed(base.faults.seed, r);
    batch.runs[r] = run_simulation(config);
  });
  for (const SimReport& run : batch.runs) batch.aggregate.merge(run);
  return batch;
}

}  // namespace confcall::cellular
