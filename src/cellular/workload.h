// Named simulation scenarios.
//
// The paper's motivation spans very different deployments — dense urban
// cores with small cells and fast-moving users, suburban campuses,
// highway corridors with directional movement approximated by fast
// mixing. These presets give examples, tests and benchmarks a shared,
// documented vocabulary instead of ad-hoc parameter soups.
#pragma once

#include <string>
#include <vector>

#include "cellular/simulator.h"

namespace confcall::cellular {

/// A named, documented scenario preset.
struct Scenario {
  std::string name;
  std::string description;
  SimConfig config;
};

/// Dense urban core: many small cells, small LAs, fast users, heavy
/// conference traffic. Paging dominates the wireless bill.
Scenario dense_urban_scenario(std::uint64_t seed = 1);

/// Suburban campus: moderate grid, two LAs, lazy users, medium traffic —
/// the regime where multi-round paging shines.
Scenario campus_scenario(std::uint64_t seed = 1);

/// Highway corridor: a long thin grid, very mobile users, sparse calls.
/// Reporting dominates the wireless bill.
Scenario highway_scenario(std::uint64_t seed = 1);

/// The dense-urban deployment on a bad day: cell outages, lost uplink
/// reports and overloaded paging rounds, with a bounded backoff retry
/// policy. The preset exercised by the fault-tolerance experiment (E12)
/// and the degraded-mode tests.
Scenario degraded_urban_scenario(std::uint64_t seed = 1);

/// The dense-urban deployment under overload: Markov-modulated call
/// bursts (10x the quiet rate), sporadic cell outages, token-bucket
/// admission with the three-state health machine, per-call deadlines and
/// the breaker-guarded resilient planner chain. The preset exercised by
/// the overload experiment (E14) and the soak harness.
Scenario overloaded_urban_scenario(std::uint64_t seed = 1);

/// All presets, for sweep harnesses.
std::vector<Scenario> all_scenarios(std::uint64_t seed = 1);

}  // namespace confcall::cellular
