// User mobility models over a cell grid.
//
// The paper assumes the per-device location distribution is given ([15,16]
// estimate it from movement). The simulator closes that loop: devices move
// by a lazy random walk (a Markov chain on the cell graph), the location
// management layer estimates distributions from observed traces
// (profile.h), and the paging algorithms consume the estimates.
#pragma once

#include <cstddef>
#include <vector>

#include "cellular/topology.h"
#include "prob/rng.h"

namespace confcall::cellular {

/// Lazy random walk on the grid: with probability `stay` remain in the
/// current cell, otherwise move to a uniformly random neighbour. With
/// stay > 0 the chain is aperiodic; on a connected grid it is ergodic, so
/// the stationary distribution exists and power iteration converges.
class MarkovMobility {
 public:
  /// Throws std::invalid_argument unless 0 <= stay < 1 (stay = 1 would
  /// freeze every user and the stationary profile would be degenerate).
  MarkovMobility(const GridTopology& grid, double stay_probability);

  [[nodiscard]] const GridTopology& grid() const noexcept { return *grid_; }
  [[nodiscard]] double stay_probability() const noexcept { return stay_; }

  /// One transition from `current`.
  [[nodiscard]] CellId step(CellId current, prob::Rng& rng) const;

  /// The full transition-probability row of a cell (dense, length c).
  [[nodiscard]] std::vector<double> transition_row(CellId cell) const;

  /// Stationary distribution by power iteration to L1 tolerance `tol`
  /// (throws std::runtime_error if not converged in `max_iters`).
  [[nodiscard]] std::vector<double> stationary_distribution(
      std::size_t max_iters = 100000, double tol = 1e-12) const;

  /// `dist` advanced `steps` transitions (the t-step predictive
  /// distribution used by the last-seen profile estimator).
  [[nodiscard]] std::vector<double> evolve(std::vector<double> dist,
                                           std::size_t steps) const;

  /// A trace of `steps + 1` cells starting at `start` (inclusive).
  [[nodiscard]] std::vector<CellId> generate_trace(CellId start,
                                                   std::size_t steps,
                                                   prob::Rng& rng) const;

 private:
  const GridTopology* grid_;
  double stay_;
};

}  // namespace confcall::cellular
