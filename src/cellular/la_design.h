// Location-area design: choosing the LA size that balances reporting
// against paging.
//
// Section 1.1 of the paper: "The choice of location areas affects the
// reporting traffic (e.g., [1,5])" — small LAs mean frequent boundary
// crossings (uplink reports), large LAs mean expensive searches per call
// (downlink pages). This module computes both sides ANALYTICALLY for the
// Markov mobility model and a d-round paging policy, so a designer can
// sweep tilings and pick the U-curve minimum without simulating:
//
//  * report rate — at stationarity, the per-user-step probability of
//    crossing an LA boundary is sum_j pi(j) * sum_{j'} T(j,j') [LA(j') !=
//    LA(j)], exact from the chain's transition rows;
//  * paging cost — with LA-crossing reporting the database LA is always
//    current, and a callee's location profile within it is the stationary
//    distribution conditioned on the LA; the expected pages per callee is
//    the LA-mass-weighted average of the optimal d-round single-user
//    paging cost over the LAs (Fig. 1, exact for m = 1).
//
// Tests cross-validate both quantities against the discrete-event
// simulator; bench E11 regenerates the classic U-curve.
#pragma once

#include <cstddef>
#include <vector>

#include "cellular/mobility.h"
#include "cellular/topology.h"

namespace confcall::cellular {

/// Analytic evaluation of one tiling.
struct TilingEvaluation {
  std::size_t tile_rows = 0;
  std::size_t tile_cols = 0;
  std::size_t num_areas = 0;
  /// Expected LA-boundary crossings per user per step at stationarity.
  double report_rate = 0.0;
  /// Expected cells paged to find one callee (optimal d-round paging on
  /// the stationary-conditional profile, averaged over LAs by mass).
  double pages_per_callee = 0.0;

  /// Combined wireless cost per user per step:
  /// report_cost * report_rate + page_cost * callee_rate * pages_per_callee
  /// where callee_rate is the per-user-step probability of being paged.
  [[nodiscard]] double cost_per_user_step(double report_cost,
                                          double page_cost,
                                          double callee_rate) const {
    return report_cost * report_rate +
           page_cost * callee_rate * pages_per_callee;
  }
};

/// Evaluates one tiling analytically. `paging_rounds` is the delay budget
/// d used inside each LA. Throws std::invalid_argument on zero tile
/// dimensions or zero rounds.
TilingEvaluation evaluate_tiling(const GridTopology& grid,
                                 const MarkovMobility& mobility,
                                 std::size_t tile_rows, std::size_t tile_cols,
                                 std::size_t paging_rounds);

/// Evaluates every divisor-aligned square-ish tiling of the grid (all
/// (tr, tc) with tr dividing rows and tc dividing cols), sorted by area
/// size ascending.
std::vector<TilingEvaluation> evaluate_all_tilings(
    const GridTopology& grid, const MarkovMobility& mobility,
    std::size_t paging_rounds);

/// The tiling minimizing cost_per_user_step for the given weights.
TilingEvaluation best_tiling(const GridTopology& grid,
                             const MarkovMobility& mobility,
                             std::size_t paging_rounds, double report_cost,
                             double page_cost, double callee_rate);

}  // namespace confcall::cellular
