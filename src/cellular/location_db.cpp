#include "cellular/location_db.h"

#include <stdexcept>

namespace confcall::cellular {

LocationDatabase::LocationDatabase(std::size_t num_users,
                                   const LocationAreas& areas,
                                   const std::vector<CellId>& initial_cells)
    : areas_(&areas),
      reported_cell_(initial_cells),
      steps_since_report_(num_users, 0) {
  if (initial_cells.size() != num_users) {
    throw std::invalid_argument(
        "LocationDatabase: one initial cell per user");
  }
  reported_area_.reserve(num_users);
  for (const CellId cell : initial_cells) {
    reported_area_.push_back(areas_->area_of(cell));
  }
}

bool LocationDatabase::observe_move(UserId user, CellId new_cell,
                                    ReportPolicy policy) {
  switch (policy) {
    case ReportPolicy::kNever:
      return false;
    case ReportPolicy::kOnAreaCrossing: {
      const std::size_t new_area = areas_->area_of(new_cell);
      if (new_area == reported_area_.at(user)) return false;
      record_report(user, new_cell);
      return true;
    }
    case ReportPolicy::kOnCellCrossing: {
      if (new_cell == reported_cell_.at(user)) return false;
      record_report(user, new_cell);
      return true;
    }
    case ReportPolicy::kEveryTSteps:
    case ReportPolicy::kDistanceThreshold:
      // Timer and distance policies carry parameters and need topology;
      // LocationService::observe_move implements them on top of
      // record_report.
      throw std::invalid_argument(
          "LocationDatabase: timer/distance policies are handled by "
          "LocationService");
  }
  throw std::logic_error("LocationDatabase: unknown policy");
}

void LocationDatabase::tick() {
  for (auto& steps : steps_since_report_) ++steps;
}

void LocationDatabase::record_report(UserId user, CellId cell) {
  reported_cell_.at(user) = cell;
  reported_area_.at(user) = areas_->area_of(cell);
  steps_since_report_.at(user) = 0;
}

void LocationDatabase::restore_record(UserId user, CellId cell,
                                      std::size_t steps) {
  reported_cell_.at(user) = cell;
  reported_area_.at(user) = areas_->area_of(cell);
  steps_since_report_.at(user) = steps;
}

}  // namespace confcall::cellular
