#include "cellular/mobility.h"

#include <cmath>
#include <stdexcept>

namespace confcall::cellular {

MarkovMobility::MarkovMobility(const GridTopology& grid,
                               double stay_probability)
    : grid_(&grid), stay_(stay_probability) {
  if (stay_ < 0.0 || stay_ >= 1.0) {
    throw std::invalid_argument("MarkovMobility: need 0 <= stay < 1");
  }
}

CellId MarkovMobility::step(CellId current, prob::Rng& rng) const {
  if (rng.next_double() < stay_) return current;
  const auto& neighbors = grid_->neighbors(current);
  if (neighbors.empty()) return current;  // 1x1 grid
  return neighbors[rng.next_below(neighbors.size())];
}

std::vector<double> MarkovMobility::transition_row(CellId cell) const {
  std::vector<double> row(grid_->num_cells(), 0.0);
  const auto& neighbors = grid_->neighbors(cell);
  if (neighbors.empty()) {
    row[cell] = 1.0;
    return row;
  }
  row[cell] = stay_;
  const double move = (1.0 - stay_) / static_cast<double>(neighbors.size());
  for (const CellId n : neighbors) row[n] += move;
  return row;
}

std::vector<double> MarkovMobility::evolve(std::vector<double> dist,
                                           std::size_t steps) const {
  const std::size_t c = grid_->num_cells();
  if (dist.size() != c) {
    throw std::invalid_argument("MarkovMobility::evolve: wrong length");
  }
  std::vector<double> next(c);
  for (std::size_t t = 0; t < steps; ++t) {
    std::fill(next.begin(), next.end(), 0.0);
    for (std::size_t j = 0; j < c; ++j) {
      const double mass = dist[j];
      if (mass == 0.0) continue;
      const auto& neighbors = grid_->neighbors(static_cast<CellId>(j));
      if (neighbors.empty()) {
        next[j] += mass;
        continue;
      }
      next[j] += mass * stay_;
      const double move =
          mass * (1.0 - stay_) / static_cast<double>(neighbors.size());
      for (const CellId n : neighbors) next[n] += move;
    }
    dist.swap(next);
  }
  return dist;
}

std::vector<double> MarkovMobility::stationary_distribution(
    std::size_t max_iters, double tol) const {
  const std::size_t c = grid_->num_cells();
  std::vector<double> dist(c, 1.0 / static_cast<double>(c));
  for (std::size_t iter = 0; iter < max_iters; ++iter) {
    std::vector<double> next = evolve(dist, 1);
    double delta = 0.0;
    for (std::size_t j = 0; j < c; ++j) delta += std::abs(next[j] - dist[j]);
    dist.swap(next);
    if (delta < tol) return dist;
  }
  throw std::runtime_error(
      "MarkovMobility: stationary distribution did not converge");
}

std::vector<CellId> MarkovMobility::generate_trace(CellId start,
                                                   std::size_t steps,
                                                   prob::Rng& rng) const {
  if (start >= grid_->num_cells()) {
    throw std::invalid_argument("MarkovMobility: start cell out of range");
  }
  std::vector<CellId> trace;
  trace.reserve(steps + 1);
  trace.push_back(start);
  CellId current = start;
  for (std::size_t t = 0; t < steps; ++t) {
    current = step(current, rng);
    trace.push_back(current);
  }
  return trace;
}

}  // namespace confcall::cellular
