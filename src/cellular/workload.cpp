#include "cellular/workload.h"

namespace confcall::cellular {

Scenario dense_urban_scenario(std::uint64_t seed) {
  Scenario scenario;
  scenario.name = "dense-urban";
  scenario.description =
      "16x16 hexagonally-planned small cells, 4x4-cell location areas, "
      "120 fast users, frequent conferences of 3-5";
  SimConfig& config = scenario.config;
  config.grid_rows = 16;
  config.grid_cols = 16;
  config.toroidal = true;
  config.neighborhood = Neighborhood::kHexagonal;  // real cell planning
  config.la_tile_rows = 4;
  config.la_tile_cols = 4;
  config.num_users = 120;
  config.stay_probability = 0.3;
  config.call_rate = 0.5;
  config.group_min = 3;
  config.group_max = 5;
  config.max_paging_rounds = 3;
  config.steps = 1500;
  config.warmup_steps = 150;
  config.seed = seed;
  return scenario;
}

Scenario campus_scenario(std::uint64_t seed) {
  Scenario scenario;
  scenario.name = "campus";
  scenario.description =
      "8x8 cells, two 8x4 location areas, 32 lazy users, occasional "
      "conferences of 2-4";
  SimConfig& config = scenario.config;
  config.grid_rows = 8;
  config.grid_cols = 8;
  config.toroidal = false;
  config.la_tile_rows = 8;
  config.la_tile_cols = 4;
  config.num_users = 32;
  config.stay_probability = 0.75;
  config.call_rate = 0.2;
  config.group_min = 2;
  config.group_max = 4;
  config.max_paging_rounds = 4;
  config.steps = 2000;
  config.warmup_steps = 300;
  config.seed = seed;
  return scenario;
}

Scenario highway_scenario(std::uint64_t seed) {
  Scenario scenario;
  scenario.name = "highway";
  scenario.description =
      "2x32 corridor cells, 2x8 location areas, 24 very mobile users, "
      "sparse pair calls";
  SimConfig& config = scenario.config;
  config.grid_rows = 2;
  config.grid_cols = 32;
  config.toroidal = true;  // wrap the corridor so flow never pools
  config.la_tile_rows = 2;
  config.la_tile_cols = 8;
  config.num_users = 24;
  config.stay_probability = 0.1;
  config.call_rate = 0.08;
  config.group_min = 2;
  config.group_max = 2;
  config.max_paging_rounds = 2;
  config.steps = 3000;
  config.warmup_steps = 200;
  config.seed = seed;
  return scenario;
}

Scenario degraded_urban_scenario(std::uint64_t seed) {
  Scenario scenario = dense_urban_scenario(seed);
  scenario.name = "degraded-urban";
  scenario.description =
      "dense-urban under structured faults: sporadic cell outages, 10% "
      "uplink report loss, 5% paging-round drops; recovery bounded by "
      "4 retries with exponential backoff and a 4000-page call budget";
  SimConfig& config = scenario.config;
  config.faults.cell_outage_rate = 0.05;
  config.faults.outage_duration = 40;
  config.faults.report_loss_rate = 0.10;
  config.faults.round_drop_rate = 0.05;
  config.faults.seed = seed ^ 0xfa17;
  config.retry.max_retries = 4;
  config.retry.backoff_base = 1;
  config.retry.backoff_cap = 8;
  config.retry.page_budget = 4000;
  return scenario;
}

Scenario overloaded_urban_scenario(std::uint64_t seed) {
  Scenario scenario = dense_urban_scenario(seed);
  scenario.name = "overloaded-urban";
  scenario.description =
      "dense-urban under Markov-modulated call bursts (10x quiet rate) "
      "and sporadic outages, with token-bucket admission, 8ms call "
      "deadlines and the breaker-guarded resilient planner chain";
  SimConfig& config = scenario.config;
  config.burst.enabled = true;
  config.burst.base_rate = 0.1;
  config.burst.burst_rate = 1.0;
  config.burst.p_enter = 0.02;
  config.burst.p_exit = 0.10;
  config.faults.cell_outage_rate = 0.02;
  config.faults.outage_duration = 40;
  config.faults.seed = seed ^ 0xfa17;
  config.retry.max_retries = 4;
  config.retry.backoff_base = 1;
  config.retry.backoff_cap = 8;
  config.overload.enabled = true;
  // Sustains the quiet load (~0.4 tokens/step at one token per callee)
  // but not a burst (~4 tokens/step): bucket drains -> degraded -> shed.
  config.overload.admission.bucket_capacity = 48.0;
  config.overload.admission.refill_per_sec = 80.0;  // 0.8 tokens/step
  config.overload.call_deadline_ns = 8'000'000;     // 8 rounds at 1ms
  config.overload.round_duration_ns = 1'000'000;
  config.overload.step_duration_ns = 10'000'000;
  config.overload.resilient_planner = true;
  // Low enough for the exact tier to overrun on the big multi-callee
  // areas, so breakers have a deterministic failure signal to trip on.
  config.overload.planner_node_limit = 50'000;
  return scenario;
}

std::vector<Scenario> all_scenarios(std::uint64_t seed) {
  return {dense_urban_scenario(seed), campus_scenario(seed),
          highway_scenario(seed), degraded_urban_scenario(seed),
          overloaded_urban_scenario(seed)};
}

}  // namespace confcall::cellular
