#include "cellular/workload.h"

namespace confcall::cellular {

Scenario dense_urban_scenario(std::uint64_t seed) {
  Scenario scenario;
  scenario.name = "dense-urban";
  scenario.description =
      "16x16 hexagonally-planned small cells, 4x4-cell location areas, "
      "120 fast users, frequent conferences of 3-5";
  SimConfig& config = scenario.config;
  config.grid_rows = 16;
  config.grid_cols = 16;
  config.toroidal = true;
  config.neighborhood = Neighborhood::kHexagonal;  // real cell planning
  config.la_tile_rows = 4;
  config.la_tile_cols = 4;
  config.num_users = 120;
  config.stay_probability = 0.3;
  config.call_rate = 0.5;
  config.group_min = 3;
  config.group_max = 5;
  config.max_paging_rounds = 3;
  config.steps = 1500;
  config.warmup_steps = 150;
  config.seed = seed;
  return scenario;
}

Scenario campus_scenario(std::uint64_t seed) {
  Scenario scenario;
  scenario.name = "campus";
  scenario.description =
      "8x8 cells, two 8x4 location areas, 32 lazy users, occasional "
      "conferences of 2-4";
  SimConfig& config = scenario.config;
  config.grid_rows = 8;
  config.grid_cols = 8;
  config.toroidal = false;
  config.la_tile_rows = 8;
  config.la_tile_cols = 4;
  config.num_users = 32;
  config.stay_probability = 0.75;
  config.call_rate = 0.2;
  config.group_min = 2;
  config.group_max = 4;
  config.max_paging_rounds = 4;
  config.steps = 2000;
  config.warmup_steps = 300;
  config.seed = seed;
  return scenario;
}

Scenario highway_scenario(std::uint64_t seed) {
  Scenario scenario;
  scenario.name = "highway";
  scenario.description =
      "2x32 corridor cells, 2x8 location areas, 24 very mobile users, "
      "sparse pair calls";
  SimConfig& config = scenario.config;
  config.grid_rows = 2;
  config.grid_cols = 32;
  config.toroidal = true;  // wrap the corridor so flow never pools
  config.la_tile_rows = 2;
  config.la_tile_cols = 8;
  config.num_users = 24;
  config.stay_probability = 0.1;
  config.call_rate = 0.08;
  config.group_min = 2;
  config.group_max = 2;
  config.max_paging_rounds = 2;
  config.steps = 3000;
  config.warmup_steps = 200;
  config.seed = seed;
  return scenario;
}

Scenario degraded_urban_scenario(std::uint64_t seed) {
  Scenario scenario = dense_urban_scenario(seed);
  scenario.name = "degraded-urban";
  scenario.description =
      "dense-urban under structured faults: sporadic cell outages, 10% "
      "uplink report loss, 5% paging-round drops; recovery bounded by "
      "4 retries with exponential backoff and a 4000-page call budget";
  SimConfig& config = scenario.config;
  config.faults.cell_outage_rate = 0.05;
  config.faults.outage_duration = 40;
  config.faults.report_loss_rate = 0.10;
  config.faults.round_drop_rate = 0.05;
  config.faults.seed = seed ^ 0xfa17;
  config.retry.max_retries = 4;
  config.retry.backoff_base = 1;
  config.retry.backoff_cap = 8;
  config.retry.page_budget = 4000;
  return scenario;
}

std::vector<Scenario> all_scenarios(std::uint64_t seed) {
  return {dense_urban_scenario(seed), campus_scenario(seed),
          highway_scenario(seed), degraded_urban_scenario(seed)};
}

}  // namespace confcall::cellular
