// The location management service (paper Section 1.1) as a reusable
// component.
//
// "One of the main components of a wireless system is a location
// management service [2,20]. Its goal is to track the locations of devices
// that are needed in order to establish calls." This class is that
// component: it ingests device movement events (applying the configured
// reporting policy and maintaining visit statistics), and serves locate()
// requests by planning and executing a paging search per location area —
// the GSM blanket, the paper's Fig. 1 planner, or the Section 5 adaptive
// variant — including the imperfect-detection recovery path.
//
// The service never reads ground truth on its own: callers (a simulator,
// a test harness, in principle a real radio layer) supply the devices'
// actual cells at locate() time, standing in for the base stations that
// would hear the page responses.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "cellular/location_db.h"
#include "cellular/mobility.h"
#include "cellular/topology.h"
#include "core/strategy.h"
#include "prob/distribution.h"
#include "prob/rng.h"

namespace confcall::cellular {

/// How the network pages the cells of a location area during call setup.
enum class PagingPolicy {
  kBlanketArea,  ///< page the whole LA at once (GSM MAP / IS-41 baseline)
  kGreedy,       ///< the paper's Fig. 1 d-round strategy
  kAdaptive,     ///< Section 5 adaptive re-planning
};

/// Which location-profile estimator feeds the planner.
enum class ProfileKind {
  kEmpirical,   ///< smoothed visit counts observed so far
  kStationary,  ///< mobility chain's stationary distribution
  kLastSeen,    ///< t-step prediction from the last reported cell
};

/// A network-side location management service over one cell grid.
class LocationService {
 public:
  struct Config {
    ReportPolicy report_policy = ReportPolicy::kOnAreaCrossing;
    /// Period T for ReportPolicy::kEveryTSteps (>= 1).
    std::size_t timer_period = 16;
    /// Hop threshold D for ReportPolicy::kDistanceThreshold (>= 1).
    std::size_t distance_threshold = 2;
    PagingPolicy paging_policy = PagingPolicy::kGreedy;
    ProfileKind profile_kind = ProfileKind::kLastSeen;
    std::size_t max_paging_rounds = 3;   ///< the delay constraint d
    double laplace_alpha = 1.0;          ///< empirical-profile smoothing
    std::size_t last_seen_horizon = 100;  ///< cap on prediction steps
    /// Section 5 imperfect detection: P[a paged device answers].
    double detection_probability = 1.0;
    /// Section 5 response collisions: detection probability divides by
    /// the number of sought devices sharing the paged cell.
    bool collision_losses = false;
    /// Whole-grid recovery sweeps before force-registering a device.
    std::size_t max_recovery_sweeps = 8;
  };

  /// Registers `initial_cells.size()` devices at their starting cells (a
  /// power-on attach). Throws std::invalid_argument on an invalid config
  /// (detection probability outside (0,1], adaptive policy combined with
  /// imperfect detection) or empty user set. The topology objects must
  /// outlive the service.
  LocationService(const GridTopology& grid, const LocationAreas& areas,
                  const MarkovMobility& mobility, Config config,
                  std::vector<CellId> initial_cells);

  [[nodiscard]] std::size_t num_users() const noexcept {
    return visit_counts_.size();
  }

  /// Ingests one movement event; returns true when the reporting policy
  /// sent an uplink report (which the caller accounts).
  bool observe_move(UserId user, CellId new_cell);

  /// Advances the per-device "steps since last report" clocks; call once
  /// per global time step after the observe_move batch.
  void tick();

  /// Result of one locate() request.
  struct LocateOutcome {
    std::size_t cells_paged = 0;
    std::size_t rounds_used = 0;
    /// Pages spent on whole-grid recovery sweeps (stale database entries
    /// or unanswered pages).
    std::size_t fallback_pages = 0;
    /// Pages that hit a sought device's cell but went unanswered.
    std::size_t missed_detections = 0;
  };

  /// Locates `users` (their actual cells supplied positionally in
  /// `true_cells` by the caller's radio layer). Plans per reported
  /// location area, executes the search under the detection model using
  /// `rng`, updates the database with every answer, and runs recovery
  /// sweeps until everyone is found. Throws std::invalid_argument on
  /// size mismatches or out-of-range cells.
  LocateOutcome locate(std::span<const UserId> users,
                       std::span<const CellId> true_cells, prob::Rng& rng);

  /// The location profile the service would use for `user` over the cells
  /// of `area` right now (exposed for inspection and tests).
  [[nodiscard]] prob::ProbabilityVector profile_for(UserId user,
                                                    std::size_t area) const;

  /// The database record, for inspection.
  [[nodiscard]] const LocationDatabase& database() const { return db_; }

 private:
  bool page_answered(std::size_t cohabitants, prob::Rng& rng) const;

  struct AreaOutcome {
    std::size_t pages = 0;
    std::size_t rounds = 0;
    bool ran_all_rounds = false;
  };
  static constexpr std::size_t kUnknownLocal = static_cast<std::size_t>(-1);
  AreaOutcome execute_area_strategy(const core::Strategy& strategy,
                                    std::span<const UserId> users,
                                    std::span<const CellId> true_cells,
                                    const std::vector<std::size_t>& local_of,
                                    std::vector<bool>& found,
                                    LocateOutcome& outcome, prob::Rng& rng);

  const GridTopology* grid_;
  const LocationAreas* areas_;
  const MarkovMobility* mobility_;
  Config config_;
  LocationDatabase db_;
  std::vector<std::vector<double>> visit_counts_;  // per user, per cell
  std::vector<double> stationary_;  // cached when profile kind needs it
};

}  // namespace confcall::cellular
