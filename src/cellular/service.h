// The location management service (paper Section 1.1) as a reusable
// component.
//
// "One of the main components of a wireless system is a location
// management service [2,20]. Its goal is to track the locations of devices
// that are needed in order to establish calls." This class is that
// component: it ingests device movement events (applying the configured
// reporting policy and maintaining visit statistics), and serves locate()
// requests by planning and executing a paging search per location area —
// the GSM blanket, the paper's Fig. 1 planner, or the Section 5 adaptive
// variant — including the imperfect-detection recovery path.
//
// Degraded modes: an attached FaultPlan (faults.h) injects cell outages,
// uplink-report loss and per-round channel drops; recovery is governed by
// a RetryPolicy (bounded retries with exponential backoff, a per-call
// page budget and a hard round deadline) instead of an unbounded sweep
// loop, and every degradation is accounted in LocateOutcome.
//
// Overload: locate() accepts a LocateContext carrying the call's
// propagated support::Deadline (converted to a round budget through the
// configured round duration — plan quality degrades before latency does)
// and a plan_cheap flag set by admission control under degraded health,
// which bypasses the planner tiers entirely and blanket-pages the area.
//
// The service never reads ground truth on its own: callers (a simulator,
// a test harness, in principle a real radio layer) supply the devices'
// actual cells at locate() time, standing in for the base stations that
// would hear the page responses.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "cellular/faults.h"
#include "cellular/location_db.h"
#include "cellular/mobility.h"
#include "cellular/topology.h"
#include "core/strategy.h"
#include "prob/distribution.h"
#include "prob/rng.h"
#include "support/fleet.h"
#include "support/metrics.h"
#include "support/overload.h"
#include "support/trace.h"

namespace confcall::core {
class Planner;
}  // namespace confcall::core

namespace confcall::cellular {

/// How the network pages the cells of a location area during call setup.
enum class PagingPolicy {
  kBlanketArea,  ///< page the whole LA at once (GSM MAP / IS-41 baseline)
  kGreedy,       ///< the paper's Fig. 1 d-round strategy
  kAdaptive,     ///< Section 5 adaptive re-planning
};

/// Which location-profile estimator feeds the planner.
enum class ProfileKind {
  kEmpirical,   ///< smoothed visit counts observed so far
  kStationary,  ///< mobility chain's stationary distribution
  kLastSeen,    ///< t-step prediction from the last reported cell
};

/// Governs the recovery path of locate(): how many whole-grid sweeps a
/// missing callee earns, how long the network waits between them, and
/// when the call is cut off. The defaults reproduce the historical
/// behaviour (8 immediate sweeps, no budget, no deadline).
struct RetryPolicy {
  /// Recovery sweeps before the remaining callees are force-registered.
  /// 0 = no recovery: a missing callee is abandoned immediately (and the
  /// call counted as such).
  std::size_t max_retries = 8;
  /// Idle paging rounds before retry k: backoff_base << k, capped at
  /// backoff_cap. 0 = retry immediately (the historical behaviour).
  /// Waiting costs delay (rounds_used) but no pages — it models letting
  /// an overloaded channel or a transient outage clear.
  std::size_t backoff_base = 0;
  /// Upper bound on a single backoff wait, in rounds.
  std::size_t backoff_cap = 8;
  /// Per-call page budget gating recovery: a sweep that would push
  /// cells_paged past this is not started (budget_exhausted). 0 = none.
  /// The planned per-area phase is never gated — only recovery is
  /// optional work.
  std::size_t page_budget = 0;
  /// Hard deadline in total rounds (search + backoff + sweeps); a retry
  /// that cannot finish by the deadline is not started. 0 = none.
  std::size_t round_deadline = 0;

  /// Throws std::invalid_argument with a specific message on nonsense
  /// (backoff_base > backoff_cap with backoff enabled).
  void validate() const;
};

/// The locate-path metric handles, registered on a caller-owned
/// MetricRegistry by create() and passed into LocationService::Config by
/// value. A default-constructed ServiceMetrics is fully unbound: every
/// operation no-ops, so an uninstrumented service pays only null checks
/// (bench_e15_observability holds the instrumented path within 5% of it).
struct ServiceMetrics {
  support::Counter calls;             ///< confcall_locate_calls_total
  support::Counter cache_hits;        ///< confcall_locate_plan_cache_hits_total
  support::Counter cache_misses;      ///< confcall_locate_plan_cache_misses_total
  support::Counter retries;           ///< confcall_locate_retries_total
  support::Counter abandoned;         ///< confcall_locate_abandoned_total
  support::Counter deadline_limited;  ///< confcall_locate_deadline_limited_total
  support::Histogram pages;           ///< confcall_locate_pages per call
  support::Histogram rounds;          ///< confcall_locate_rounds per call
  /// Lemma 2.1 expected paging of each planned per-area strategy — the
  /// paper's EP objective tracked live, on the same bucket layout as the
  /// observed `pages` histogram so predicted and realized paging cost
  /// compare directly.
  support::Histogram ep_predicted;    ///< confcall_locate_ep_predicted
  /// Distribution of locate_many() batch sizes (single locate() calls do
  /// not observe it, so the histogram counts batches, not calls).
  support::Histogram batch_size;      ///< confcall_locate_batch_size

  /// Registers the confcall_locate_* family on `registry` (idempotent)
  /// and returns bound handles. `labels` attach to every series —
  /// ServiceFleet passes {{"shard", "<s>"}} so each lane exports its own
  /// locate family; the default keeps the historical unlabelled series
  /// (which the SLO controller senses). The registry must outlive every
  /// service holding the handles.
  [[nodiscard]] static ServiceMetrics create(
      support::MetricRegistry& registry, const support::MetricLabels& labels = {});
};

/// A network-side location management service over one cell grid.
class LocationService {
 public:
  struct Config {
    ReportPolicy report_policy = ReportPolicy::kOnAreaCrossing;
    /// Period T for ReportPolicy::kEveryTSteps (>= 1).
    std::size_t timer_period = 16;
    /// Hop threshold D for ReportPolicy::kDistanceThreshold (>= 1).
    std::size_t distance_threshold = 2;
    PagingPolicy paging_policy = PagingPolicy::kGreedy;
    ProfileKind profile_kind = ProfileKind::kLastSeen;
    std::size_t max_paging_rounds = 3;   ///< the delay constraint d
    double laplace_alpha = 1.0;          ///< empirical-profile smoothing
    std::size_t last_seen_horizon = 100;  ///< cap on prediction steps
    /// Section 5 imperfect detection: P[a paged device answers].
    double detection_probability = 1.0;
    /// Section 5 response collisions: detection probability divides by
    /// the number of sought devices sharing the paged cell.
    bool collision_losses = false;
    /// Recovery behaviour (replaces the old max_recovery_sweeps knob).
    RetryPolicy retry;
    /// Optional planner override: when set (non-owning, must outlive the
    /// service) and paging_policy == kGreedy, per-area strategies come
    /// from this planner instead of the built-in Fig. 1 call — pass a
    /// core::ResilientPlanner to keep serving locate() through planner
    /// failures. Ignored under kBlanketArea and kAdaptive.
    const core::Planner* planner = nullptr;
    /// Reuse each area's last planned strategy while its planning inputs
    /// are unchanged. The cache key is a content signature of everything
    /// the planner reads (callee profiles, delay budget, area size, and
    /// the area's injected-outage state), so a hit returns exactly the
    /// strategy a fresh plan would produce: locate() results are
    /// identical with the cache on or off, only the Fig. 1 DP cost is
    /// skipped. Profile refreshes and fault transitions change the
    /// signature and force a replan.
    bool enable_plan_cache = true;
    /// Virtual duration of one paging round, used to convert a
    /// propagated Deadline into a per-call round budget. 0 (the default)
    /// rejects bounded deadlines — a service that enforces deadlines
    /// must say what a round costs.
    std::uint64_t round_duration_ns = 0;
    /// Time source the deadlines are read against (non-owning; must
    /// outlive the service). The simulator injects a ManualClock so
    /// deadline behaviour is deterministic; a real deployment passes
    /// &support::SteadyClockSource::shared(). Required (with a nonzero
    /// round_duration_ns) before locate() accepts a bounded deadline.
    const support::ClockSource* clock = nullptr;
    /// Locate-path metric handles (see ServiceMetrics). Default = all
    /// unbound = the byte-inert uninstrumented service.
    ServiceMetrics metrics{};
    /// Span sink for per-call locate / plan / page_rounds / recovery
    /// spans (non-owning; must outlive the service). nullptr = no
    /// tracing, zero cost. For always-on deployments pass a
    /// support::SamplingTracer: 1-in-N sampling decided at the locate
    /// root keeps throughput within 5% of untraced (E16) and never
    /// tears a trace.
    support::Tracer* tracer = nullptr;
    /// Optional process-wide signature -> strategy table shared across
    /// services (non-owning; must outlive the service). On a local
    /// plan-cache miss the table is consulted before the planner, and a
    /// freshly planned strategy is published back — identically
    /// distributed areas then plan once per PROCESS instead of once per
    /// service (see cellular/service_fleet.h). Consulted only with
    /// enable_plan_cache on (a shared hit is copied into the local
    /// cache, which is what makes later hits free). Results are
    /// unchanged with or without the table: a shared hit returns
    /// exactly the strategy the deterministic planner would produce for
    /// the same signed inputs.
    support::SignatureTable<core::Strategy>* shared_plan_table = nullptr;

    /// Consolidated validation with one specific message per rejection.
    /// Called by the constructor; exposed so SimConfig and tests can
    /// check a configuration without building a service.
    void validate() const;
  };

  /// Registers `initial_cells.size()` devices at their starting cells (a
  /// power-on attach). Throws std::invalid_argument on an invalid config
  /// (see Config::validate) or empty user set. The topology objects must
  /// outlive the service.
  LocationService(const GridTopology& grid, const LocationAreas& areas,
                  const MarkovMobility& mobility, Config config,
                  std::vector<CellId> initial_cells);

  /// Attaches a fault injector (non-owning; must outlive the service,
  /// nullptr detaches). The caller advances the plan's outage clocks via
  /// FaultPlan::begin_step. Throws std::invalid_argument under the
  /// adaptive paging policy, whose conditioning assumes a fault-free
  /// network.
  void attach_faults(FaultPlan* faults);

  [[nodiscard]] std::size_t num_users() const noexcept {
    return visit_counts_.size();
  }

  /// Ingests one movement event; returns true when the reporting policy
  /// sent an uplink report (which the caller accounts — a report lost to
  /// an injected fault still returns true: the uplink cost was paid,
  /// only the database missed it, and reports_lost() counts it).
  bool observe_move(UserId user, CellId new_cell);

  /// Advances the per-device "steps since last report" clocks; call once
  /// per global time step after the observe_move batch.
  void tick();

  /// Uplink reports swallowed by the fault plan since construction
  /// (observation-side twin of FaultStats::reports_dropped).
  [[nodiscard]] std::size_t reports_lost() const noexcept {
    return reports_lost_;
  }

  /// Result of one locate() request.
  struct LocateOutcome {
    std::size_t cells_paged = 0;
    std::size_t rounds_used = 0;
    /// Pages spent on whole-grid recovery sweeps (stale database entries
    /// or unanswered pages).
    std::size_t fallback_pages = 0;
    /// Pages that hit a sought device's cell but went unanswered.
    std::size_t missed_detections = 0;
    /// Pages spent on a sought callee's cell while that cell was dark
    /// (in injected outage): the page could never be answered.
    std::size_t outage_pages = 0;
    /// Paging rounds (planned or recovery) lost to injected channel
    /// drops: their pages are spent, nobody hears them.
    std::size_t dropped_rounds = 0;
    /// Recovery sweeps actually run for this call.
    std::size_t retries = 0;
    /// Idle rounds spent backing off between retries.
    std::size_t backoff_rounds = 0;
    /// Callees force-registered without ever answering (recovery
    /// exhausted, budget hit, or retries disabled).
    std::size_t forced_registrations = 0;
    /// The page budget or round deadline cut recovery short.
    bool budget_exhausted = false;
    /// The call needed the degraded path (any retry, or abandonment).
    bool degraded = false;
    /// At least one callee was abandoned (force-registered unfound).
    bool abandoned = false;
    /// The propagated deadline capped this call — either the planning
    /// delay budget was reduced below the configured d, or recovery was
    /// cut off so the admitted call never overruns its deadline.
    bool deadline_limited = false;
  };

  /// Per-call overload context threaded into locate() by the admission
  /// layer. The default (unbounded deadline, full-quality planning) is
  /// exactly the historical behaviour.
  struct LocateContext {
    /// Absolute call-setup deadline, read against Config::clock. An
    /// admitted call never uses more rounds than
    /// remaining_ns / round_duration_ns; when that leaves fewer rounds
    /// than the configured d, the call is planned for the smaller delay
    /// budget (more aggressive paging — quality degrades, not latency).
    support::Deadline deadline{};
    /// Degraded health: skip the planner tiers and blanket-page each
    /// area directly (the cheap tier — zero planning cost).
    bool plan_cheap = false;
  };

  /// Locates `users` (their actual cells supplied positionally in
  /// `true_cells` by the caller's radio layer). Plans per reported
  /// location area, executes the search under the detection and fault
  /// models using `rng`, updates the database with every answer, and
  /// runs recovery sweeps under the RetryPolicy. Callees still missing
  /// when recovery ends are force-registered and accounted as abandoned.
  /// Throws std::invalid_argument on size mismatches or out-of-range
  /// cells.
  LocateOutcome locate(std::span<const UserId> users,
                       std::span<const CellId> true_cells, prob::Rng& rng) {
    return locate(users, true_cells, rng, LocateContext{});
  }

  /// locate() under an overload context: the call's propagated deadline
  /// bounds total rounds (planned search + backoff + recovery sweeps),
  /// and plan_cheap swaps planned searches for blanket area pages.
  /// Throws std::invalid_argument on a bounded deadline without a
  /// configured clock/round duration, or any context under the adaptive
  /// policy (whose re-planning assumes the full delay budget).
  LocateOutcome locate(std::span<const UserId> users,
                       std::span<const CellId> true_cells, prob::Rng& rng,
                       const LocateContext& context);

  /// One call of a locate_many() batch. The spans are views: the caller
  /// keeps the user/cell arrays alive for the duration of the call.
  struct LocateRequest {
    std::span<const UserId> users;
    std::span<const CellId> true_cells;
    LocateContext context{};
  };

  /// Serves a batch of locate requests in order on one warm footing: one
  /// `locate_batch` span instead of per-call trace roots, one batch-size
  /// histogram observation, and every per-call scratch structure (plan
  /// rows, grouping buffers, the evaluator arena) stays hot across the
  /// whole batch. Outcomes are bit-identical to calling locate() once per
  /// request in the same order with the same rng — batching changes the
  /// cost, never the result. An empty batch returns an empty vector.
  std::vector<LocateOutcome> locate_many(std::span<const LocateRequest> requests,
                                         prob::Rng& rng);

  /// The location profile the service would use for `user` over the cells
  /// of `area` right now (exposed for inspection and tests).
  [[nodiscard]] prob::ProbabilityVector profile_for(UserId user,
                                                    std::size_t area) const;

  /// Plan-cache hit/miss counters since construction. Only planned
  /// searches count: the blanket policy never plans and the adaptive
  /// policy re-plans by design, so neither touches the cache.
  struct PlanCacheStats {
    std::size_t hits = 0;
    std::size_t misses = 0;
    [[nodiscard]] double hit_rate() const noexcept {
      const std::size_t total = hits + misses;
      return total == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(total);
    }
  };
  [[nodiscard]] const PlanCacheStats& plan_cache_stats() const noexcept {
    return plan_cache_stats_;
  }

  /// The database record, for inspection.
  [[nodiscard]] const LocationDatabase& database() const { return db_; }

  /// Section name + version for checkpoint bundles (see
  /// support/state_io.h).
  static constexpr const char* kStateSection = "location_service";
  static constexpr std::uint32_t kStateVersion = 1;

  /// Serializes the service's learned state — the location database
  /// records, per-user visit statistics, and every plan-cache entry
  /// (signature, strategy, expected paging) — prefixed with a shape
  /// guard (user/cell/area counts and the policy knobs the bytes depend
  /// on). Pure function of the logical state: identical state yields
  /// identical bytes regardless of thread count.
  [[nodiscard]] std::string save_state() const;

  /// Restores a kStateSection payload written by save_state against a
  /// freshly constructed service over the SAME topology and config.
  /// All-or-nothing: the payload is fully parsed and validated (shape
  /// guard, cell ranges, strategy invariants via Strategy::from_groups)
  /// before any field is touched, so a rejected payload leaves the
  /// service in its cold-start state. Returns false on any mismatch or
  /// malformed payload; NEVER throws on bad input. Restored plan-cache
  /// entries are still signature-checked on lookup, so an entry whose
  /// planning inputs changed since the checkpoint simply misses.
  [[nodiscard]] bool restore_state(std::string_view payload,
                                   std::uint32_t version);

 private:
  bool page_answered(std::size_t cohabitants, prob::Rng& rng) const;

  struct AreaOutcome {
    std::size_t pages = 0;
    std::size_t rounds = 0;
    bool ran_all_rounds = false;
  };
  static constexpr std::size_t kUnknownLocal = static_cast<std::size_t>(-1);
  AreaOutcome execute_area_strategy(const core::Strategy& strategy,
                                    std::span<const UserId> users,
                                    std::span<const CellId> true_cells,
                                    const std::vector<std::size_t>& local_of,
                                    std::vector<bool>& found,
                                    LocateOutcome& outcome, prob::Rng& rng);
  /// `ep_out`, when non-null, receives the Lemma 2.1 expected paging of
  /// the returned strategy (or stays untouched on the blanket/cheap path,
  /// which never builds an instance). The value is cached alongside the
  /// strategy, so attaching the EP histogram does not re-run the
  /// evaluator on cache hits. Returns a pointer (never null) into either
  /// the plan cache or scratch_.planned; it is valid until the next
  /// plan_area_strategy call on this service.
  const core::Strategy* plan_area_strategy(std::span<const UserId> group_users,
                                           std::size_t area,
                                           std::size_t num_cells,
                                           std::size_t d, bool plan_cheap,
                                           double* ep_out = nullptr) const;
  /// Signs the planning inputs straight off the profile rows (one pointer
  /// per device — rows may alias, e.g. the shared per-area stationary
  /// profile), so the hot cache-hit path never materializes an Instance.
  [[nodiscard]] std::uint64_t plan_signature(
      std::span<const prob::ProbabilityVector* const> rows,
      std::size_t num_cells, std::size_t area, std::size_t d) const;
  void run_recovery(std::span<const UserId> users,
                    std::span<const CellId> true_cells,
                    std::vector<std::size_t> missing,
                    std::size_t first_sweep_pages, std::size_t round_cap,
                    LocateOutcome& outcome, prob::Rng& rng);

  const GridTopology* grid_;
  const LocationAreas* areas_;
  const MarkovMobility* mobility_;
  Config config_;
  LocationDatabase db_;
  FaultPlan* faults_ = nullptr;
  std::size_t reports_lost_ = 0;
  std::vector<std::vector<double>> visit_counts_;  // per user, per cell
  std::vector<double> stationary_;  // cached when profile kind needs it
  /// Stationary profile restricted to each area, computed once at
  /// construction under ProfileKind::kStationary: the row is identical
  /// for every user, so the planning path shares one cached vector per
  /// area instead of rebuilding it per callee per call.
  std::vector<prob::ProbabilityVector> stationary_area_;

  /// A cached strategy plus the signature of the planning inputs it was
  /// built from, and its Lemma 2.1 expected paging (-1 until someone
  /// asks — computed lazily only when the EP histogram is attached, so
  /// the uninstrumented hot path never pays for the evaluator).
  struct PlanCacheEntry {
    std::uint64_t signature;
    core::Strategy strategy;
    double expected_paging = -1.0;
  };
  /// Per-area cache shard: a handful of entries (one per live signature —
  /// in practice one per conference-subgroup size and outage state) with
  /// round-robin eviction, so churning profile kinds (kLastSeen changes
  /// every tick) stay bounded while steady workloads keep every live
  /// signature resident. Mutable because caching is invisible to callers
  /// of the const planning path.
  struct PlanCacheShard {
    static constexpr std::size_t kCapacity = 8;
    std::vector<PlanCacheEntry> entries;
    std::size_t next_slot = 0;
  };
  /// One shard per location area, index-addressed (areas are dense
  /// 0..num_areas-1): the hot path replaces a std::map walk with one
  /// vector index.
  mutable std::vector<PlanCacheShard> plan_cache_;
  mutable PlanCacheStats plan_cache_stats_;

  /// Per-call scratch reused across locate() calls (and across a whole
  /// locate_many() batch): grouping buffers, per-area working vectors and
  /// the planning-row staging. Only sized, never shrunk, so a steady
  /// workload stops allocating after the first call. Mutable because the
  /// const planning path stages rows here; LocationService was never
  /// concurrently callable (locate() writes the database), so this adds
  /// no new threading constraint.
  struct LocateScratch {
    std::vector<std::pair<std::size_t, std::size_t>> area_of_index;
    std::vector<UserId> group_users;
    std::vector<CellId> group_cells;
    std::vector<std::size_t> local_of;
    std::vector<bool> found;
    std::vector<bool> area_paged_fully;
    std::vector<prob::ProbabilityVector> rows;
    std::vector<const prob::ProbabilityVector*> row_ptrs;
    std::optional<core::Strategy> planned;  ///< uncached / blanket plans
  };
  mutable LocateScratch scratch_;
};

}  // namespace confcall::cellular
