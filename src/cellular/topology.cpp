#include "cellular/topology.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <span>
#include <stdexcept>
#include <utility>

namespace confcall::cellular {

GridTopology::GridTopology(std::size_t rows, std::size_t cols, bool toroidal,
                           Neighborhood neighborhood)
    : rows_(rows),
      cols_(cols),
      toroidal_(toroidal),
      neighborhood_(neighborhood) {
  if (rows_ == 0 || cols_ == 0) {
    throw std::invalid_argument("GridTopology: zero dimension");
  }
  if (neighborhood_ == Neighborhood::kHexagonal && toroidal_ &&
      rows_ % 2 != 0) {
    throw std::invalid_argument(
        "GridTopology: hexagonal toroidal grids need an even row count "
        "(odd-r offsets must line up across the wrap seam)");
  }

  using Offset = std::pair<int, int>;
  static const Offset kVonNeumannOffsets[] = {
      {-1, 0}, {1, 0}, {0, -1}, {0, 1}};
  static const Offset kMooreOffsets[] = {{-1, -1}, {-1, 0}, {-1, 1},
                                         {0, -1},  {0, 1},  {1, -1},
                                         {1, 0},   {1, 1}};
  // Odd-r hexagonal offsets depend on row parity.
  static const Offset kHexEven[] = {{-1, -1}, {-1, 0}, {0, -1},
                                    {0, 1},   {1, -1}, {1, 0}};
  static const Offset kHexOdd[] = {{-1, 0}, {-1, 1}, {0, -1},
                                   {0, 1},  {1, 0},  {1, 1}};

  adjacency_.resize(rows_ * cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      auto& adj = adjacency_[r * cols_ + c];
      std::span<const Offset> offsets;
      switch (neighborhood_) {
        case Neighborhood::kVonNeumann:
          offsets = kVonNeumannOffsets;
          break;
        case Neighborhood::kMoore:
          offsets = kMooreOffsets;
          break;
        case Neighborhood::kHexagonal:
          offsets = (r % 2 == 0) ? std::span<const Offset>(kHexEven)
                                 : std::span<const Offset>(kHexOdd);
          break;
      }
      for (const auto& [dr, dc] : offsets) {
        std::size_t rr, cc;
        if (toroidal_) {
          rr = (r + rows_ + static_cast<std::size_t>(dr + 1) - 1) % rows_;
          cc = (c + cols_ + static_cast<std::size_t>(dc + 1) - 1) % cols_;
        } else {
          const auto nr = static_cast<std::ptrdiff_t>(r) + dr;
          const auto nc = static_cast<std::ptrdiff_t>(c) + dc;
          if (nr < 0 || nc < 0 ||
              nr >= static_cast<std::ptrdiff_t>(rows_) ||
              nc >= static_cast<std::ptrdiff_t>(cols_)) {
            continue;
          }
          rr = static_cast<std::size_t>(nr);
          cc = static_cast<std::size_t>(nc);
        }
        const auto cell = static_cast<CellId>(rr * cols_ + cc);
        // Wrap on tiny grids can alias to self or duplicate; keep the
        // adjacency a simple graph.
        if (cell == static_cast<CellId>(r * cols_ + c)) continue;
        if (std::find(adj.begin(), adj.end(), cell) != adj.end()) continue;
        adj.push_back(cell);
      }
    }
  }
}

std::size_t GridTopology::distance(CellId a, CellId b) const {
  if (a >= num_cells() || b >= num_cells()) {
    throw std::invalid_argument("GridTopology::distance: cell out of range");
  }
  if (a == b) return 0;
  // Closed forms for the rectangular neighbourhoods; BFS for hexagonal
  // (odd-r wrap distances have awkward case analysis — the graph is tiny).
  if (neighborhood_ != Neighborhood::kHexagonal) {
    const auto axis = [this](std::size_t x, std::size_t y,
                             std::size_t extent) {
      const std::size_t direct = x > y ? x - y : y - x;
      if (!toroidal_) return direct;
      return std::min(direct, extent - direct);
    };
    const std::size_t dr = axis(row_of(a), row_of(b), rows_);
    const std::size_t dc = axis(col_of(a), col_of(b), cols_);
    return neighborhood_ == Neighborhood::kMoore ? std::max(dr, dc)
                                                 : dr + dc;
  }
  std::vector<std::size_t> dist(num_cells(),
                                std::numeric_limits<std::size_t>::max());
  std::queue<CellId> frontier;
  dist[a] = 0;
  frontier.push(a);
  while (!frontier.empty()) {
    const CellId current = frontier.front();
    frontier.pop();
    if (current == b) return dist[current];
    for (const CellId next : adjacency_[current]) {
      if (dist[next] == std::numeric_limits<std::size_t>::max()) {
        dist[next] = dist[current] + 1;
        frontier.push(next);
      }
    }
  }
  throw std::logic_error("GridTopology::distance: disconnected grid (bug)");
}

CellId GridTopology::cell_at(std::size_t row, std::size_t col) const {
  if (row >= rows_ || col >= cols_) {
    throw std::invalid_argument("GridTopology: coordinates out of range");
  }
  return static_cast<CellId>(row * cols_ + col);
}

LocationAreas LocationAreas::tiles(const GridTopology& grid,
                                   std::size_t tile_rows,
                                   std::size_t tile_cols) {
  if (tile_rows == 0 || tile_cols == 0) {
    throw std::invalid_argument("LocationAreas: zero tile dimension");
  }
  const std::size_t tiles_per_row = (grid.cols() + tile_cols - 1) / tile_cols;
  std::vector<std::size_t> area_of(grid.num_cells());
  std::size_t max_area = 0;
  for (std::size_t cell = 0; cell < grid.num_cells(); ++cell) {
    const std::size_t tr = grid.row_of(static_cast<CellId>(cell)) / tile_rows;
    const std::size_t tc = grid.col_of(static_cast<CellId>(cell)) / tile_cols;
    const std::size_t area = tr * tiles_per_row + tc;
    area_of[cell] = area;
    if (area > max_area) max_area = area;
  }
  std::vector<std::vector<CellId>> cells_in(max_area + 1);
  for (std::size_t cell = 0; cell < grid.num_cells(); ++cell) {
    cells_in[area_of[cell]].push_back(static_cast<CellId>(cell));
  }
  return LocationAreas(std::move(area_of), std::move(cells_in));
}

LocationAreas LocationAreas::whole_grid(const GridTopology& grid) {
  std::vector<std::size_t> area_of(grid.num_cells(), 0);
  std::vector<std::vector<CellId>> cells_in(1);
  for (std::size_t cell = 0; cell < grid.num_cells(); ++cell) {
    cells_in[0].push_back(static_cast<CellId>(cell));
  }
  return LocationAreas(std::move(area_of), std::move(cells_in));
}

}  // namespace confcall::cellular
