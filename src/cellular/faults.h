// Deterministic fault injection for the cellular substrate.
//
// The paper's Section 5 already admits an imperfect network: a paged
// device answers only with probability q, and responses can collide.
// Production networks fail in more structured ways — a base station goes
// dark for a while, an uplink report is lost before it reaches the HLR,
// a paging channel is overloaded for a whole round. A FaultPlan injects
// exactly those three fault classes into a simulation, deterministically:
// it draws from its own seeded stream, so (a) a plan with all rates zero
// is perfectly inert (it never draws, and the surrounding simulation is
// byte-identical to a run without it), and (b) the injected fault
// sequence is reproducible given the config.
//
// Every injection is counted on the plan itself (FaultStats), so the
// consuming layer (LocationService / run_simulation) can prove
// conservation: each drop the plan reports is observed exactly once as a
// lost report or a dead paging round downstream.
#pragma once

#include <cstdint>
#include <vector>

#include "cellular/topology.h"
#include "prob/rng.h"

namespace confcall::cellular {

/// Fault intensities. All rates are probabilities per opportunity; zero
/// disables that fault class entirely (no randomness is consumed for it).
struct FaultConfig {
  /// P[a new cell outage starts] per simulation step. The failed cell is
  /// chosen uniformly; a cell in outage is paged at full cost but no
  /// device inside it can answer.
  double cell_outage_rate = 0.0;
  /// Steps a failed cell stays dark (>= 1 when outages are enabled).
  std::size_t outage_duration = 20;
  /// P[an uplink location report is lost] — the device pays the uplink
  /// cost but the database silently goes stale.
  double report_loss_rate = 0.0;
  /// P[a whole paging round is dropped] — channel overload: the round's
  /// pages are spent but nobody hears them.
  double round_drop_rate = 0.0;
  /// Seed of the plan's private random stream (independent of the
  /// simulation seed, so faults do not perturb mobility or workload).
  std::uint64_t seed = 0xfa17;

  /// Throws std::invalid_argument with a specific message when a rate is
  /// outside [0, 1] or the duration is zero while outages are enabled.
  void validate() const;

  /// True when any fault class is enabled.
  [[nodiscard]] bool any_enabled() const noexcept {
    return cell_outage_rate > 0.0 || report_loss_rate > 0.0 ||
           round_drop_rate > 0.0;
  }
};

/// Injection-side counters, for conservation checks against the
/// observation-side counters in LocateOutcome / SimReport.
struct FaultStats {
  std::size_t outages_started = 0;   ///< fresh cell outages begun
  std::size_t reports_dropped = 0;   ///< uplink reports swallowed
  std::size_t rounds_dropped = 0;    ///< paging rounds lost to overload
};

/// The injector: owns the fault stream and the per-cell outage clocks.
class FaultPlan {
 public:
  /// Validates the config. `num_cells` must match the grid the plan will
  /// be used with (outages pick a uniform cell).
  FaultPlan(const FaultConfig& config, std::size_t num_cells);

  /// Advances outage clocks by one step and possibly starts a new
  /// outage. Call once per simulation step, before movement/paging.
  void begin_step();

  /// Is this cell currently dark?
  [[nodiscard]] bool cell_out(CellId cell) const {
    return outage_remaining_.at(cell) > 0;
  }

  /// Number of currently dark cells.
  [[nodiscard]] std::size_t cells_out() const noexcept { return cells_out_; }

  /// Draws the report-loss fault for one uplink report. Counts and
  /// returns true when the report must be swallowed. Never draws when
  /// the rate is zero.
  bool drop_report();

  /// Draws the channel-overload fault for one paging round. Counts and
  /// returns true when the round is dead. Never draws when the rate is
  /// zero.
  bool drop_round();

  [[nodiscard]] const FaultStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const FaultConfig& config() const noexcept { return config_; }

 private:
  FaultConfig config_;
  prob::Rng rng_;
  std::vector<std::size_t> outage_remaining_;  // steps left dark, per cell
  std::size_t cells_out_ = 0;
  FaultStats stats_;
};

}  // namespace confcall::cellular
