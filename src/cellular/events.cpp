#include "cellular/events.h"

#include <numeric>
#include <stdexcept>

namespace confcall::cellular {

CallGenerator::CallGenerator(double rate_per_step, std::size_t num_users,
                             std::size_t group_min, std::size_t group_max)
    : rate_(rate_per_step),
      num_users_(num_users),
      group_min_(group_min),
      group_max_(group_max) {
  if (rate_ < 0.0 || rate_ > 1.0) {
    throw std::invalid_argument("CallGenerator: rate must be in [0, 1]");
  }
  if (group_min_ == 0 || group_min_ > group_max_ ||
      group_max_ > num_users_) {
    throw std::invalid_argument(
        "CallGenerator: need 1 <= min <= max <= users");
  }
}

CallEvent CallGenerator::maybe_call(prob::Rng& rng) const {
  CallEvent event;
  if (rng.next_double() >= rate_) return event;
  const std::size_t group =
      group_min_ +
      static_cast<std::size_t>(rng.next_below(group_max_ - group_min_ + 1));
  // Partial Fisher–Yates: the first `group` entries of a shuffle.
  std::vector<UserId> pool(num_users_);
  std::iota(pool.begin(), pool.end(), UserId{0});
  for (std::size_t k = 0; k < group; ++k) {
    const std::size_t pick =
        k + static_cast<std::size_t>(rng.next_below(num_users_ - k));
    std::swap(pool[k], pool[pick]);
  }
  event.participants.assign(pool.begin(),
                            pool.begin() + static_cast<std::ptrdiff_t>(group));
  return event;
}

}  // namespace confcall::cellular
