#include "cellular/events.h"

#include <numeric>
#include <stdexcept>
#include <string>

namespace confcall::cellular {

CallGenerator::CallGenerator(double rate_per_step, std::size_t num_users,
                             std::size_t group_min, std::size_t group_max)
    : rate_(rate_per_step),
      num_users_(num_users),
      group_min_(group_min),
      group_max_(group_max) {
  if (rate_ < 0.0 || rate_ > 1.0) {
    throw std::invalid_argument("CallGenerator: rate must be in [0, 1]");
  }
  if (group_min_ == 0 || group_min_ > group_max_ ||
      group_max_ > num_users_) {
    throw std::invalid_argument(
        "CallGenerator: need 1 <= min <= max <= users");
  }
}

CallEvent CallGenerator::maybe_call(prob::Rng& rng) const {
  CallEvent event;
  if (rng.next_double() >= rate_) return event;
  const std::size_t group =
      group_min_ +
      static_cast<std::size_t>(rng.next_below(group_max_ - group_min_ + 1));
  // Partial Fisher–Yates: the first `group` entries of a shuffle.
  std::vector<UserId> pool(num_users_);
  std::iota(pool.begin(), pool.end(), UserId{0});
  for (std::size_t k = 0; k < group; ++k) {
    const std::size_t pick =
        k + static_cast<std::size_t>(rng.next_below(num_users_ - k));
    std::swap(pool[k], pool[pick]);
  }
  event.participants.assign(pool.begin(),
                            pool.begin() + static_cast<std::ptrdiff_t>(group));
  return event;
}

void BurstConfig::validate() const {
  const auto check = [](double p, const char* what) {
    if (!(p >= 0.0 && p <= 1.0)) {
      throw std::invalid_argument(std::string("BurstConfig: ") + what +
                                  " must be in [0, 1]");
    }
  };
  check(base_rate, "base_rate");
  check(burst_rate, "burst_rate");
  check(p_enter, "p_enter");
  check(p_exit, "p_exit");
}

BurstyCallGenerator::BurstyCallGenerator(const BurstConfig& config,
                                         std::size_t num_users,
                                         std::size_t group_min,
                                         std::size_t group_max)
    : config_(config),
      quiet_(config.base_rate, num_users, group_min, group_max),
      bursting_(config.burst_rate, num_users, group_min, group_max) {
  config_.validate();
}

CallEvent BurstyCallGenerator::maybe_call(prob::Rng& rng) {
  // One draw per step for the modulation chain, unconditionally, so the
  // arrival stream downstream of a given step depends only on the chain
  // state — not on how the state was reached.
  const double flip = rng.next_double();
  if (in_burst_) {
    if (flip < config_.p_exit) in_burst_ = false;
  } else if (flip < config_.p_enter) {
    in_burst_ = true;
    ++bursts_entered_;
  }
  return (in_burst_ ? bursting_ : quiet_).maybe_call(rng);
}

}  // namespace confcall::cellular
