// Plain-text serialization of instances and strategies.
//
// Format (line-oriented, '#' starts a comment, whitespace-separated):
//
//   conference-call-instance v1
//   m 2
//   c 3
//   0.5 0.25 0.25        <- device 0's row
//   0.1 0.2  0.7         <- device 1's row
//
// Strategies use the same compact form Strategy::to_string() prints:
// "{1,0}|{2}" — groups separated by '|', cells by ','.
//
// Round-trips are exact for values that print losslessly; rows are
// re-validated on parse, so a hand-edited file that no longer sums to 1
// is rejected with a clear error.
#pragma once

#include <string>
#include <string_view>

#include "core/instance.h"
#include "core/strategy.h"

namespace confcall::core {

/// Serializes an instance (17 significant digits, lossless for doubles).
std::string instance_to_text(const Instance& instance);

/// Parses the format above. Throws std::invalid_argument on malformed
/// input (bad header, wrong counts, non-numeric tokens, invalid rows).
Instance instance_from_text(std::string_view text);

/// Parses "{1,0}|{2}" over `num_cells` cells. Accepts whitespace between
/// tokens. Throws std::invalid_argument on malformed input or when the
/// groups do not partition {0..num_cells-1}.
Strategy strategy_from_text(std::string_view text, std::size_t num_cells);

}  // namespace confcall::core
