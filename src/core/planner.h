// Polymorphic planner interface.
//
// The concrete algorithms (blanket, Fig. 1 greedy, bandwidth-capped,
// exact solvers) all map (instance, delay budget) to a Strategy; this
// interface lets applications treat them interchangeably — swap the
// planner in a deployment, A/B them in a simulator, or enumerate them in
// a comparison harness (see compare_planners / examples/planner_compare).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/instance.h"
#include "core/objective.h"
#include "core/strategy.h"

namespace confcall::core {

/// Maps an instance and a delay budget to an oblivious paging strategy.
/// Implementations are stateless and const; they may throw
/// std::invalid_argument for budgets/instances outside their domain.
class Planner {
 public:
  virtual ~Planner() = default;

  /// Human-readable identifier for tables and logs.
  [[nodiscard]] virtual std::string name() const = 0;

  /// Plans a strategy of at most `num_rounds` rounds.
  [[nodiscard]] virtual Strategy plan(const Instance& instance,
                                      std::size_t num_rounds) const = 0;
};

/// GSM MAP / IS-41 baseline: one round, every cell.
class BlanketPlanner final : public Planner {
 public:
  [[nodiscard]] std::string name() const override { return "blanket"; }
  [[nodiscard]] Strategy plan(const Instance& instance,
                              std::size_t num_rounds) const override;
};

/// The paper's Fig. 1 algorithm (e/(e-1)-approximate; optimal for m = 1).
class GreedyPlanner final : public Planner {
 public:
  explicit GreedyPlanner(Objective objective = Objective::all_of())
      : objective_(objective) {}
  [[nodiscard]] std::string name() const override { return "greedy-fig1"; }
  [[nodiscard]] Strategy plan(const Instance& instance,
                              std::size_t num_rounds) const override;

 private:
  Objective objective_;
};

/// Fig. 1 with the Section 5 per-round cap.
class BandwidthLimitedPlanner final : public Planner {
 public:
  /// Throws std::invalid_argument when max_cells_per_round is zero.
  explicit BandwidthLimitedPlanner(std::size_t max_cells_per_round,
                                   Objective objective = Objective::all_of());
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] Strategy plan(const Instance& instance,
                              std::size_t num_rounds) const override;

 private:
  std::size_t cap_;
  Objective objective_;
};

/// Ground truth via branch-and-bound (exponential; small instances only).
class ExactPlanner final : public Planner {
 public:
  explicit ExactPlanner(Objective objective = Objective::all_of())
      : objective_(objective) {}
  [[nodiscard]] std::string name() const override { return "exact-bnb"; }
  [[nodiscard]] Strategy plan(const Instance& instance,
                              std::size_t num_rounds) const override;

 private:
  Objective objective_;
};

/// Exact via column-type symmetry (polynomial when the instance has few
/// distinct probability columns).
class TypedExactPlanner final : public Planner {
 public:
  explicit TypedExactPlanner(Objective objective = Objective::all_of(),
                             std::uint64_t node_limit = 20'000'000)
      : objective_(objective), node_limit_(node_limit) {}
  [[nodiscard]] std::string name() const override { return "exact-typed"; }
  [[nodiscard]] Strategy plan(const Instance& instance,
                              std::size_t num_rounds) const override;

 private:
  Objective objective_;
  std::uint64_t node_limit_;
};

/// One comparison row: planner name, the strategy's expected paging and
/// expected rounds under the given objective.
struct PlannerComparison {
  std::string name;
  double expected_paging = 0.0;
  double expected_rounds = 0.0;
  Strategy strategy;
};

/// Plans with each planner and evaluates under one common objective.
/// Planners that reject the instance/budget (throw std::invalid_argument)
/// are skipped. Results come back in input order.
std::vector<PlannerComparison> compare_planners(
    const Instance& instance, std::size_t num_rounds,
    std::span<const Planner* const> planners,
    const Objective& objective = Objective::all_of());

/// The built-in planner set used by examples: blanket, greedy, typed
/// exact, and the resilient fallback chain (resilient_planner.h).
std::vector<std::unique_ptr<Planner>> default_planners();

}  // namespace confcall::core
