// Optimal paging for a single mobile device (m = 1).
//
// The paper builds on the classical result (Goodman–Krishnan–Sugla [11],
// Madhavapeddy–Basu–Roberts [16], Rose–Yates [17]) that the Conference
// Call problem with one device is solvable exactly in polynomial time:
// order cells by non-increasing location probability, then dynamic-program
// the split into at most d rounds. This module wraps that algorithm with a
// single-device API; it shares the DP of Lemma 4.7 (which for m = 1 is the
// exact algorithm, not just an approximation).
#pragma once

#include <cstddef>

#include "core/greedy.h"
#include "prob/distribution.h"

namespace confcall::core {

/// Plans the OPTIMAL d-round paging strategy for one device with the given
/// location distribution. Throws std::invalid_argument unless
/// 1 <= d <= cells.
PlanResult plan_single_user(const prob::ProbabilityVector& distribution,
                            std::size_t num_rounds);

/// Expected paging of the optimal single-user d-round strategy. Equals
/// 3c/4 for the uniform distribution with even c and d = 2 (the example of
/// Section 1.1).
double optimal_single_user_paging(const prob::ProbabilityVector& distribution,
                                  std::size_t num_rounds);

}  // namespace confcall::core
