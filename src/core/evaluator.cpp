#include "core/evaluator.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "prob/stats.h"
#include "support/arena.h"

namespace confcall::core {

namespace {

void check_compatible(const Instance& instance, const Strategy& strategy) {
  if (instance.num_cells() != strategy.num_cells()) {
    throw std::invalid_argument(
        "evaluator: strategy covers a different number of cells than the "
        "instance");
  }
}

// One prefix sweep shared by the double (KahanSum) reference path and the
// exact Rational path: fold one round's cells into the per-device prefix
// masses q_i = P_i(L_r). Acc is prob::KahanSum or prob::Rational; Inst is
// the matching Instance/RationalInstance.
template <typename Inst, typename Acc>
void accumulate_group(const Inst& instance, std::span<const CellId> group,
                      std::vector<Acc>& prefix) {
  for (const CellId cell : group) {
    for (std::size_t i = 0; i < prefix.size(); ++i) {
      prefix[i] += instance.prob(static_cast<DeviceId>(i), cell);
    }
  }
}

}  // namespace

std::vector<double> stop_by_round(const Instance& instance,
                                  const Strategy& strategy,
                                  const Objective& objective) {
  check_compatible(instance, strategy);
  const std::size_t m = instance.num_devices();
  const std::size_t d = strategy.num_rounds();
  // Validate k against m up front (throws for bad k).
  (void)objective.required(m);

  // Compensated accumulation of q_i = P_i(L_r) in structure-of-arrays
  // form: one sums lane and one compensation lane per device, fed from the
  // instance's contiguous probability columns. The lanes are independent,
  // so the inner loop vectorizes without reassociating any sum — every
  // device runs the exact KahanSum::add sequence the scalar path runs,
  // which is what makes the two paths bit-identical. The running sums stay
  // unclamped (so no drift is baked into later rounds) and the clamp is
  // applied only to the value handed to the objective.
  auto& arena = support::ScratchArena::local();
  const support::ScratchArena::Scope scope(arena);
  const std::span<double> sums = arena.alloc<double>(m, 0.0);
  const std::span<double> comps = arena.alloc<double>(m, 0.0);
  const std::span<double> clamped = arena.alloc<double>(m, 0.0);
  std::vector<double> by_round(d, 0.0);
  for (std::size_t r = 0; r < d; ++r) {
    for (const CellId cell : strategy.group(r)) {
      const std::span<const double> column = instance.column(cell);
      for (std::size_t i = 0; i < m; ++i) {
        const double y = column[i] - comps[i];
        const double t = sums[i] + y;
        comps[i] = (t - sums[i]) - y;
        sums[i] = t;
      }
    }
    for (std::size_t i = 0; i < m; ++i) {
      clamped[i] = std::min(sums[i], 1.0);
    }
    by_round[r] = objective.stop_probability(clamped);
  }
  by_round[d - 1] = 1.0;  // every cell has been paged
  return by_round;
}

std::vector<double> stop_by_round_scalar(const Instance& instance,
                                         const Strategy& strategy,
                                         const Objective& objective) {
  check_compatible(instance, strategy);
  const std::size_t m = instance.num_devices();
  const std::size_t d = strategy.num_rounds();
  (void)objective.required(m);

  std::vector<prob::KahanSum> prefix(m);
  std::vector<double> clamped(m, 0.0);
  std::vector<double> by_round(d, 0.0);
  for (std::size_t r = 0; r < d; ++r) {
    accumulate_group(instance, strategy.group(r), prefix);
    for (std::size_t i = 0; i < m; ++i) {
      clamped[i] = std::min(prefix[i].value(), 1.0);
    }
    by_round[r] = objective.stop_probability(clamped);
  }
  by_round[d - 1] = 1.0;
  return by_round;
}

std::vector<double> stop_at_round(const Instance& instance,
                                  const Strategy& strategy,
                                  const Objective& objective) {
  std::vector<double> by_round = stop_by_round(instance, strategy, objective);
  for (std::size_t r = by_round.size(); r-- > 1;) {
    by_round[r] -= by_round[r - 1];
    // Monotone in exact arithmetic; clamp float drift.
    if (by_round[r] < 0.0) by_round[r] = 0.0;
  }
  return by_round;
}

namespace {

double paging_from_stop_curve(const Instance& instance,
                              const Strategy& strategy,
                              const std::vector<double>& by_round) {
  double ep = static_cast<double>(instance.num_cells());
  for (std::size_t r = 0; r + 1 < strategy.num_rounds(); ++r) {
    ep -= static_cast<double>(strategy.group(r + 1).size()) * by_round[r];
  }
  return ep;
}

}  // namespace

double expected_paging(const Instance& instance, const Strategy& strategy,
                       const Objective& objective) {
  return paging_from_stop_curve(instance, strategy,
                                stop_by_round(instance, strategy, objective));
}

double expected_paging_scalar(const Instance& instance,
                              const Strategy& strategy,
                              const Objective& objective) {
  return paging_from_stop_curve(
      instance, strategy, stop_by_round_scalar(instance, strategy, objective));
}

double expected_rounds(const Instance& instance, const Strategy& strategy,
                       const Objective& objective) {
  const std::vector<double> at_round =
      stop_at_round(instance, strategy, objective);
  double expectation = 0.0;
  for (std::size_t r = 0; r < at_round.size(); ++r) {
    expectation += static_cast<double>(r + 1) * at_round[r];
  }
  return expectation;
}

double paging_variance(const Instance& instance, const Strategy& strategy,
                       const Objective& objective) {
  const std::vector<double> at_round =
      stop_at_round(instance, strategy, objective);
  double first = 0.0;
  double second = 0.0;
  std::size_t cumulative = 0;
  for (std::size_t r = 0; r < at_round.size(); ++r) {
    cumulative += strategy.group(r).size();
    const double paged = static_cast<double>(cumulative);
    first += paged * at_round[r];
    second += paged * paged * at_round[r];
  }
  return std::max(0.0, second - first * first);
}

double expected_paging_definitional(const Instance& instance,
                                    const Strategy& strategy,
                                    const Objective& objective) {
  const std::vector<double> at_round =
      stop_at_round(instance, strategy, objective);
  double expectation = 0.0;
  std::size_t cumulative = 0;
  for (std::size_t r = 0; r < at_round.size(); ++r) {
    cumulative += strategy.group(r).size();
    expectation += static_cast<double>(cumulative) * at_round[r];
  }
  return expectation;
}

std::vector<CellId> sample_locations(const Instance& instance,
                                     prob::Rng& rng) {
  std::vector<CellId> locations(instance.num_devices());
  for (std::size_t i = 0; i < instance.num_devices(); ++i) {
    const double u = rng.next_double();
    double cumulative = 0.0;
    CellId chosen = static_cast<CellId>(instance.num_cells() - 1);
    for (std::size_t j = 0; j < instance.num_cells(); ++j) {
      cumulative += instance.prob(static_cast<DeviceId>(i),
                                  static_cast<CellId>(j));
      if (u < cumulative) {
        chosen = static_cast<CellId>(j);
        break;
      }
    }
    locations[i] = chosen;
  }
  return locations;
}

PagingOutcome execute_strategy(const Strategy& strategy,
                               std::span<const CellId> true_locations,
                               const Objective& objective) {
  const std::size_t m = true_locations.size();
  const std::size_t needed = objective.required(m);
  std::size_t found = 0;
  PagingOutcome outcome;
  for (std::size_t r = 0; r < strategy.num_rounds(); ++r) {
    outcome.cells_paged += strategy.group(r).size();
    outcome.rounds_used = r + 1;
    for (const CellId location : true_locations) {
      if (strategy.round_of(location) == r) ++found;
    }
    if (found >= needed) break;
  }
  return outcome;
}

namespace {

/// Raw first/second moments of `trials` executed paging runs.
struct TrialMoments {
  double sum = 0.0;
  double sum_sq = 0.0;
};

TrialMoments run_trials(const Instance& instance, const Strategy& strategy,
                        std::size_t trials, prob::Rng& rng,
                        const Objective& objective) {
  TrialMoments moments;
  for (std::size_t t = 0; t < trials; ++t) {
    const std::vector<CellId> locations = sample_locations(instance, rng);
    const PagingOutcome outcome =
        execute_strategy(strategy, locations, objective);
    const double paged = static_cast<double>(outcome.cells_paged);
    moments.sum += paged;
    moments.sum_sq += paged * paged;
  }
  return moments;
}

MonteCarloEstimate estimate_from_moments(const TrialMoments& moments,
                                         std::size_t trials) {
  MonteCarloEstimate estimate;
  estimate.trials = trials;
  estimate.mean = moments.sum / static_cast<double>(trials);
  const double variance =
      trials > 1
          ? std::max(0.0, (moments.sum_sq -
                           moments.sum * moments.sum /
                               static_cast<double>(trials)) /
                              static_cast<double>(trials - 1))
          : 0.0;
  estimate.std_error = std::sqrt(variance / static_cast<double>(trials));
  return estimate;
}

}  // namespace

MonteCarloEstimate monte_carlo_paging(const Instance& instance,
                                      const Strategy& strategy,
                                      std::size_t trials, prob::Rng& rng,
                                      const Objective& objective) {
  check_compatible(instance, strategy);
  if (trials == 0) {
    throw std::invalid_argument("monte_carlo_paging: zero trials");
  }
  return estimate_from_moments(
      run_trials(instance, strategy, trials, rng, objective), trials);
}

MonteCarloEstimate monte_carlo_paging_parallel(
    const Instance& instance, const Strategy& strategy, std::size_t trials,
    std::uint64_t seed, const support::ThreadPool& pool,
    const Objective& objective, std::size_t shards) {
  check_compatible(instance, strategy);
  if (trials == 0) {
    throw std::invalid_argument("monte_carlo_paging_parallel: zero trials");
  }
  if (shards == 0) shards = std::min<std::size_t>(64, trials);
  if (shards > trials) {
    throw std::invalid_argument(
        "monte_carlo_paging_parallel: more shards than trials");
  }

  // Shard s runs base (+1 for the first `extra` shards) trials from its
  // own substream; moments land in index-addressed slots and are merged
  // in shard order, so the estimate is bit-identical for any pool size.
  const std::size_t base = trials / shards;
  const std::size_t extra = trials % shards;
  std::vector<TrialMoments> per_shard(shards);
  pool.parallel_for(shards, [&](std::size_t s) {
    prob::Rng rng = prob::Rng::substream(seed, s);
    const std::size_t shard_trials = base + (s < extra ? 1 : 0);
    per_shard[s] = run_trials(instance, strategy, shard_trials, rng,
                              objective);
  });

  TrialMoments total;
  for (const TrialMoments& moments : per_shard) {
    total.sum += moments.sum;
    total.sum_sq += moments.sum_sq;
  }
  return estimate_from_moments(total, trials);
}

prob::Rational expected_paging_exact(const RationalInstance& instance,
                                     const Strategy& strategy) {
  if (instance.num_cells() != strategy.num_cells()) {
    throw std::invalid_argument(
        "expected_paging_exact: strategy/instance cell count mismatch");
  }
  const std::size_t m = instance.num_devices();
  const std::size_t d = strategy.num_rounds();
  std::vector<prob::Rational> prefix(m);  // P_i(L_r)
  prob::Rational ep(static_cast<std::int64_t>(instance.num_cells()));
  for (std::size_t r = 0; r + 1 < d; ++r) {
    accumulate_group(instance, strategy.group(r), prefix);
    prob::Rational product(1);
    for (const auto& q : prefix) product *= q;
    ep -= prob::Rational(
              static_cast<std::int64_t>(strategy.group(r + 1).size())) *
          product;
  }
  return ep;
}

}  // namespace confcall::core
