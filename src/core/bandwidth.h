// Bandwidth-limited paging (Section 5 of the paper).
//
// Real systems cannot page arbitrarily many cells in one time unit; the
// paper's extension caps every round at b cells. The observation in
// Section 5 carries over directly: Lemma 4.6 still yields an approximate
// strategy in the sorted family, and the Lemma 4.7 DP only needs its x
// range restricted — which is what plan_dp_over_order's `max_group_size`
// implements. This header provides the dedicated API plus the matching
// baseline (blanket paging now needs ceil(c/b) rounds).
#pragma once

#include <cstddef>

#include "core/greedy.h"

namespace confcall::core {

/// Fig. 1 with every group capped at `max_cells_per_round` cells. Throws
/// std::invalid_argument when d rounds of b cells cannot cover the area
/// (d*b < c) or d is outside [1, c].
PlanResult plan_bandwidth_limited(
    const Instance& instance, std::size_t num_rounds,
    std::size_t max_cells_per_round,
    const Objective& objective = Objective::all_of());

/// The bandwidth-respecting blanket baseline: page the first b cells, then
/// the next b, … in cell-index order (what a system with no location
/// profile would do). Uses ceil(c/b) rounds.
Strategy chunked_blanket(std::size_t num_cells,
                         std::size_t max_cells_per_round);

/// Minimal number of rounds any b-limited strategy needs: ceil(c/b).
std::size_t min_rounds_for_bandwidth(std::size_t num_cells,
                                     std::size_t max_cells_per_round);

}  // namespace confcall::core
