#include "core/scheme.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/evaluator.h"
#include "core/exact.h"

namespace confcall::core {

Instance quantize_instance(const Instance& instance, std::size_t levels) {
  if (levels == 0) {
    throw std::invalid_argument("quantize_instance: zero levels");
  }
  const std::size_t m = instance.num_devices();
  const std::size_t c = instance.num_cells();
  std::vector<double> flat(m * c);
  for (std::size_t i = 0; i < m; ++i) {
    const auto row = instance.row(static_cast<DeviceId>(i));
    const auto [lo_it, hi_it] = std::minmax_element(row.begin(), row.end());
    const double lo = *lo_it;
    const double width = (*hi_it - lo) / static_cast<double>(levels);
    double row_sum = 0.0;
    for (std::size_t j = 0; j < c; ++j) {
      double snapped = row[j];
      if (width > 0.0) {
        auto bucket = static_cast<std::size_t>((row[j] - lo) / width);
        if (bucket >= levels) bucket = levels - 1;  // top edge
        snapped = lo + (static_cast<double>(bucket) + 0.5) * width;
      }
      flat[i * c + j] = snapped;
      row_sum += snapped;
    }
    for (std::size_t j = 0; j < c; ++j) flat[i * c + j] /= row_sum;
  }
  return Instance(m, c, std::move(flat));
}

SchemePlanResult plan_quantized_exact(const Instance& instance,
                                      std::size_t num_rounds,
                                      std::size_t levels,
                                      const Objective& objective,
                                      std::uint64_t node_limit) {
  const Instance quantized = quantize_instance(instance, levels);
  const ExactResult solved =
      solve_exact_typed(quantized, num_rounds, objective, node_limit);

  SchemePlanResult result{
      .strategy = solved.strategy,
      .expected_paging =
          expected_paging(instance, solved.strategy, objective),
      .quantized_expected_paging = solved.expected_paging,
      .distinct_columns = column_types(quantized).count.size(),
      .max_entry_error = 0.0,
  };
  for (std::size_t i = 0; i < instance.num_devices(); ++i) {
    for (std::size_t j = 0; j < instance.num_cells(); ++j) {
      result.max_entry_error = std::max(
          result.max_entry_error,
          std::abs(instance.prob(static_cast<DeviceId>(i),
                                 static_cast<CellId>(j)) -
                   quantized.prob(static_cast<DeviceId>(i),
                                  static_cast<CellId>(j))));
    }
  }
  return result;
}

}  // namespace confcall::core
