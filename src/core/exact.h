// Exact (exponential-time) solvers.
//
// Section 3 of the paper proves the Conference Call problem NP-hard already
// for m = 2 devices and d = 2 rounds, so no polynomial exact algorithm is
// expected. These solvers are the ground truth against which the Fig. 1
// approximation is measured (experiment E2) and the oracle that verifies
// the NP-hardness reduction (experiment E5):
//
//  * d = 2: enumerate the 2^c − 2 candidate first-round subsets
//    (Lemma 2.1 collapses EP to c − |S_2|·F(S_1));
//  * general d: depth-first enumeration of all ordered partitions
//    (d^c leaves before pruning);
//  * branch-and-bound: same tree with an admissible optimistic bound that
//    prunes most of it on skewed instances.
#pragma once

#include <cstdint>
#include <vector>

#include "core/instance.h"
#include "core/objective.h"
#include "core/strategy.h"
#include "prob/rational.h"

namespace confcall::core {

/// Result of an exact search.
struct ExactResult {
  Strategy strategy;
  double expected_paging = 0.0;
  /// Search-tree nodes visited (subsets for d=2); measures the cost of
  /// exactness for experiment E5.
  std::uint64_t nodes_explored = 0;
};

/// Optimal two-round strategy by exhaustive subset enumeration.
/// Throws std::invalid_argument when c < 2 or c > `max_cells_guard`
/// (default 24: 2^24 subsets is the sensible laptop ceiling).
ExactResult solve_exact_d2(const Instance& instance,
                           const Objective& objective = Objective::all_of(),
                           std::size_t max_cells_guard = 24);

/// Optimal d-round strategy by exhaustive ordered-partition enumeration.
/// Throws std::invalid_argument when d^c would exceed `node_limit`.
ExactResult solve_exact(const Instance& instance, std::size_t num_rounds,
                        const Objective& objective = Objective::all_of(),
                        std::uint64_t node_limit = 50'000'000);

/// Optimal d-round strategy by branch-and-bound over the same tree, using
/// an admissible bound: unassigned probability mass is optimistically added
/// to every prefix and unassigned cells to the most favourable group.
/// Typically visits orders of magnitude fewer nodes than solve_exact on
/// skewed instances; identical optimum.
ExactResult solve_branch_and_bound(
    const Instance& instance, std::size_t num_rounds,
    const Objective& objective = Objective::all_of());

/// Exact solver exploiting column symmetry — the operational form of the
/// paper's Section 5 approximation-scheme remark ("probabilities covered
/// by a constant number of intervals ... search the space exhaustively in
/// polynomial time").
///
/// Cells whose probability columns are identical are interchangeable: the
/// expected paging depends only on HOW MANY cells of each column type each
/// round pages. With T distinct types the search space shrinks from d^c
/// ordered partitions to prod_t C(n_t + d - 1, d - 1) type compositions —
/// polynomial in c for constant T and d (e.g. uniform instances have
/// T = 1). Exact; equals solve_exact wherever both run. Throws
/// std::invalid_argument when the composition count exceeds `node_limit`.
ExactResult solve_exact_typed(const Instance& instance,
                              std::size_t num_rounds,
                              const Objective& objective = Objective::all_of(),
                              std::uint64_t node_limit = 20'000'000);

/// The column types of an instance: `type_of[j]` indexes the distinct
/// probability columns (bit-exact comparison), `count[t]` their
/// multiplicities. Exposed for tests and for sizing solve_exact_typed.
struct ColumnTypes {
  std::vector<std::size_t> type_of;  // per cell
  std::vector<std::size_t> count;    // per type
  std::vector<CellId> representative;  // one cell per type
};
ColumnTypes column_types(const Instance& instance);

/// Exact-rational optimum for m devices, d = 2, all-of objective. Used to
/// certify the NP-hardness reduction: OPT equals the closed-form bound of
/// Lemma 3.2 iff the source partition instance is solvable.
struct ExactRationalD2Result {
  std::vector<CellId> first_round;
  prob::Rational expected_paging;
};
ExactRationalD2Result solve_exact_d2_exact(const RationalInstance& instance,
                                           std::size_t max_cells_guard = 20);

}  // namespace confcall::core
