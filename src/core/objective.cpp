#include "core/objective.h"

#include <stdexcept>
#include <vector>

namespace confcall::core {

std::size_t Objective::required(std::size_t num_devices) const {
  switch (mode_) {
    case SearchMode::kAllOf:
      return num_devices;
    case SearchMode::kAnyOf:
      return 1;
    case SearchMode::kKOfM:
      if (k_ == 0 || k_ > num_devices) {
        throw std::invalid_argument("Objective: k out of range [1, m]");
      }
      return k_;
  }
  throw std::logic_error("Objective: unknown mode");
}

double Objective::stop_probability(
    std::span<const double> device_prefix_probs) const {
  const std::size_t m = device_prefix_probs.size();
  if (m == 0) throw std::invalid_argument("Objective: no devices");
  switch (mode_) {
    case SearchMode::kAllOf: {
      double product = 1.0;
      for (const double q : device_prefix_probs) product *= q;
      return product;
    }
    case SearchMode::kAnyOf: {
      double product = 1.0;
      for (const double q : device_prefix_probs) product *= 1.0 - q;
      return 1.0 - product;
    }
    case SearchMode::kKOfM: {
      const std::size_t k = required(m);
      // Poisson-binomial: dp[j] = Pr[exactly j of the devices seen so far
      // are in the prefix], truncated at j = k (everything >= k stops the
      // search, so it can be pooled into the last bucket).
      std::vector<double> dp(k + 1, 0.0);
      dp[0] = 1.0;
      for (const double q : device_prefix_probs) {
        for (std::size_t j = k; j-- > 0;) {
          const double move = dp[j] * q;
          dp[j] -= move;
          dp[j + 1 <= k ? j + 1 : k] += move;
        }
      }
      return dp[k];
    }
  }
  throw std::logic_error("Objective: unknown mode");
}

std::string Objective::to_string() const {
  switch (mode_) {
    case SearchMode::kAllOf:
      return "all-of (conference call)";
    case SearchMode::kAnyOf:
      return "any-of (yellow pages)";
    case SearchMode::kKOfM:
      return "k-of-m (signature, k=" + std::to_string(k_) + ")";
  }
  return "unknown";
}

}  // namespace confcall::core
