#include "core/instance.h"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace confcall::core {

Instance::Instance(std::size_t num_devices, std::size_t num_cells,
                   std::vector<double> row_major_probabilities)
    : devices_(num_devices),
      cells_(num_cells),
      probs_(std::move(row_major_probabilities)) {
  if (devices_ == 0) throw std::invalid_argument("Instance: zero devices");
  if (cells_ == 0) throw std::invalid_argument("Instance: zero cells");
  if (probs_.size() != devices_ * cells_) {
    throw std::invalid_argument("Instance: matrix size mismatch");
  }
  for (std::size_t i = 0; i < devices_; ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j < cells_; ++j) {
      const double p = probs_[i * cells_ + j];
      if (p < 0.0 || !std::isfinite(p)) {
        throw std::invalid_argument(
            "Instance: negative or non-finite probability");
      }
      row_sum += p;
    }
    if (std::abs(row_sum - 1.0) > kRowSumTolerance) {
      throw std::invalid_argument("Instance: row " + std::to_string(i) +
                                  " sums to " + std::to_string(row_sum) +
                                  ", expected 1");
    }
  }
  cols_.resize(probs_.size());
  for (std::size_t i = 0; i < devices_; ++i) {
    for (std::size_t j = 0; j < cells_; ++j) {
      cols_[j * devices_ + i] = probs_[i * cells_ + j];
    }
  }
}

Instance Instance::from_rows(const std::vector<prob::ProbabilityVector>& rows) {
  if (rows.empty()) throw std::invalid_argument("Instance: no rows");
  const std::size_t cells = rows.front().size();
  std::vector<double> flat;
  flat.reserve(rows.size() * cells);
  for (const auto& row : rows) {
    if (row.size() != cells) {
      throw std::invalid_argument("Instance: ragged rows");
    }
    flat.insert(flat.end(), row.begin(), row.end());
  }
  return Instance(rows.size(), cells, std::move(flat));
}

Instance Instance::uniform(std::size_t num_devices, std::size_t num_cells) {
  if (num_cells == 0) throw std::invalid_argument("Instance: zero cells");
  return Instance(num_devices, num_cells,
                  std::vector<double>(num_devices * num_cells,
                                      1.0 / static_cast<double>(num_cells)));
}

double Instance::cell_weight(CellId cell) const {
  double weight = 0.0;
  for (std::size_t i = 0; i < devices_; ++i) {
    weight += probs_[i * cells_ + cell];
  }
  return weight;
}

std::vector<double> Instance::cell_weights() const {
  std::vector<double> weights(cells_, 0.0);
  for (std::size_t i = 0; i < devices_; ++i) {
    for (std::size_t j = 0; j < cells_; ++j) {
      weights[j] += probs_[i * cells_ + j];
    }
  }
  return weights;
}

Instance Instance::select_devices(std::span<const DeviceId> devices) const {
  if (devices.empty()) {
    throw std::invalid_argument("select_devices: empty selection");
  }
  std::vector<double> flat;
  flat.reserve(devices.size() * cells_);
  for (const DeviceId device : devices) {
    if (device >= devices_) {
      throw std::invalid_argument("select_devices: device out of range");
    }
    const auto r = row(device);
    flat.insert(flat.end(), r.begin(), r.end());
  }
  return Instance(devices.size(), cells_, std::move(flat));
}

Instance Instance::restrict_cells(std::span<const CellId> cells) const {
  if (cells.empty()) {
    throw std::invalid_argument("restrict_cells: empty selection");
  }
  std::vector<double> flat;
  flat.reserve(devices_ * cells.size());
  for (std::size_t i = 0; i < devices_; ++i) {
    double mass = 0.0;
    for (const CellId cell : cells) {
      if (cell >= cells_) {
        throw std::invalid_argument("restrict_cells: cell out of range");
      }
      mass += prob(static_cast<DeviceId>(i), cell);
    }
    if (mass <= 0.0) {
      throw std::invalid_argument(
          "restrict_cells: device has zero mass on the kept cells");
    }
    for (const CellId cell : cells) {
      flat.push_back(prob(static_cast<DeviceId>(i), cell) / mass);
    }
  }
  return Instance(devices_, cells.size(), std::move(flat));
}

std::string Instance::to_string() const {
  std::ostringstream os;
  os << "Instance(m=" << devices_ << ", c=" << cells_ << ")\n";
  for (std::size_t i = 0; i < devices_; ++i) {
    os << "  device " << i << ":";
    for (std::size_t j = 0; j < cells_; ++j) {
      os << ' ' << probs_[i * cells_ + j];
    }
    os << '\n';
  }
  return os.str();
}

RationalInstance::RationalInstance(
    std::size_t num_devices, std::size_t num_cells,
    std::vector<prob::Rational> row_major_probabilities)
    : devices_(num_devices),
      cells_(num_cells),
      probs_(std::move(row_major_probabilities)) {
  if (devices_ == 0) {
    throw std::invalid_argument("RationalInstance: zero devices");
  }
  if (cells_ == 0) throw std::invalid_argument("RationalInstance: zero cells");
  if (probs_.size() != devices_ * cells_) {
    throw std::invalid_argument("RationalInstance: matrix size mismatch");
  }
  const prob::Rational one(1);
  for (std::size_t i = 0; i < devices_; ++i) {
    prob::Rational row_sum;
    for (std::size_t j = 0; j < cells_; ++j) {
      const auto& p = probs_[i * cells_ + j];
      if (p.signum() < 0) {
        throw std::invalid_argument("RationalInstance: negative probability");
      }
      row_sum += p;
    }
    if (row_sum != one) {
      throw std::invalid_argument("RationalInstance: row " +
                                  std::to_string(i) + " sums to " +
                                  row_sum.to_string() + ", expected 1");
    }
  }
}

Instance RationalInstance::to_double_instance() const {
  std::vector<double> flat(probs_.size());
  for (std::size_t k = 0; k < probs_.size(); ++k) {
    flat[k] = probs_[k].to_double();
  }
  // Remove the tiny conversion drift so Instance's row-sum check passes
  // regardless of the rationals' denominators.
  for (std::size_t i = 0; i < devices_; ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j < cells_; ++j) row_sum += flat[i * cells_ + j];
    for (std::size_t j = 0; j < cells_; ++j) flat[i * cells_ + j] /= row_sum;
  }
  return Instance(devices_, cells_, std::move(flat));
}

}  // namespace confcall::core
