#include "core/planner.h"

#include <stdexcept>

#include "core/bandwidth.h"
#include "core/evaluator.h"
#include "core/exact.h"
#include "core/greedy.h"
#include "core/resilient_planner.h"

namespace confcall::core {

Strategy BlanketPlanner::plan(const Instance& instance,
                              std::size_t /*num_rounds*/) const {
  return Strategy::blanket(instance.num_cells());
}

Strategy GreedyPlanner::plan(const Instance& instance,
                             std::size_t num_rounds) const {
  return plan_greedy(instance, num_rounds, objective_).strategy;
}

BandwidthLimitedPlanner::BandwidthLimitedPlanner(
    std::size_t max_cells_per_round, Objective objective)
    : cap_(max_cells_per_round), objective_(objective) {
  if (cap_ == 0) {
    throw std::invalid_argument("BandwidthLimitedPlanner: zero cap");
  }
}

std::string BandwidthLimitedPlanner::name() const {
  return "greedy-cap" + std::to_string(cap_);
}

Strategy BandwidthLimitedPlanner::plan(const Instance& instance,
                                       std::size_t num_rounds) const {
  return plan_bandwidth_limited(instance, num_rounds, cap_, objective_)
      .strategy;
}

Strategy ExactPlanner::plan(const Instance& instance,
                            std::size_t num_rounds) const {
  return solve_branch_and_bound(instance, num_rounds, objective_).strategy;
}

Strategy TypedExactPlanner::plan(const Instance& instance,
                                 std::size_t num_rounds) const {
  return solve_exact_typed(instance, num_rounds, objective_, node_limit_)
      .strategy;
}

std::vector<PlannerComparison> compare_planners(
    const Instance& instance, std::size_t num_rounds,
    std::span<const Planner* const> planners, const Objective& objective) {
  std::vector<PlannerComparison> rows;
  rows.reserve(planners.size());
  for (const Planner* planner : planners) {
    if (planner == nullptr) {
      throw std::invalid_argument("compare_planners: null planner");
    }
    try {
      Strategy strategy = planner->plan(instance, num_rounds);
      PlannerComparison row{
          .name = planner->name(),
          .expected_paging = expected_paging(instance, strategy, objective),
          .expected_rounds = expected_rounds(instance, strategy, objective),
          .strategy = std::move(strategy),
      };
      rows.push_back(std::move(row));
    } catch (const std::invalid_argument&) {
      // Planner rejected this shape (e.g. infeasible cap); skip it.
    }
  }
  return rows;
}

std::vector<std::unique_ptr<Planner>> default_planners() {
  std::vector<std::unique_ptr<Planner>> planners;
  planners.push_back(std::make_unique<BlanketPlanner>());
  planners.push_back(std::make_unique<GreedyPlanner>());
  planners.push_back(std::make_unique<TypedExactPlanner>());
  planners.push_back(ResilientPlanner::standard());
  return planners;
}

}  // namespace confcall::core
