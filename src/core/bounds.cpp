#include "core/bounds.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <stdexcept>
#include <vector>

#include "core/single_user.h"
#include "prob/rational.h"

namespace confcall::core {

double lower_bound_single_user(const Instance& instance,
                               std::size_t num_rounds) {
  if (num_rounds == 0 || num_rounds > instance.num_cells()) {
    throw std::invalid_argument("lower_bound_single_user: need 1 <= d <= c");
  }
  double best = 0.0;
  for (std::size_t i = 0; i < instance.num_devices(); ++i) {
    const auto row = instance.row(static_cast<DeviceId>(i));
    const prob::ProbabilityVector distribution(row.begin(), row.end());
    best = std::max(
        best, optimal_single_user_paging(distribution, num_rounds));
  }
  return best;
}

double lower_bound_amgm(const Instance& instance, std::size_t num_rounds) {
  const std::size_t c = instance.num_cells();
  const std::size_t d = num_rounds;
  const auto m = static_cast<double>(instance.num_devices());
  if (d == 0 || d > c) {
    throw std::invalid_argument("lower_bound_amgm: need 1 <= d <= c");
  }
  // W[j]: largest possible total weight of j cells; F̂[j]: the AM–GM cap on
  // the stop probability of ANY j-cell prefix (Lemma 4.4's inequality
  // Π q_i <= (Σ q_i / m)^m).
  std::vector<double> weights = instance.cell_weights();
  std::sort(weights.begin(), weights.end(), std::greater<>());
  std::vector<double> cap(c + 1, 0.0);
  double running = 0.0;
  for (std::size_t j = 0; j < c; ++j) {
    running += weights[j];
    cap[j + 1] = std::min(1.0, std::pow(running / m, m));
  }

  // H[l][k]: maximal capped savings from the last k cells using l+1
  // groups (mirror of the Lemma 4.7 recurrence, maximizing).
  std::vector<std::vector<double>> savings(
      d, std::vector<double>(c + 1, -1.0));
  for (std::size_t k = 1; k <= c; ++k) {
    savings[0][k] = static_cast<double>(k) * cap[c - k];
  }
  for (std::size_t l = 1; l < d; ++l) {
    for (std::size_t k = l + 1; k <= c; ++k) {
      double best = -1.0;
      for (std::size_t x = 1; x <= k - l; ++x) {
        const double value =
            static_cast<double>(x) * cap[c - k] + savings[l - 1][k - x];
        best = std::max(best, value);
      }
      savings[l][k] = best;
    }
  }
  return static_cast<double>(c) - savings[d - 1][c];
}

double lower_bound_conference(const Instance& instance,
                              std::size_t num_rounds) {
  return std::max(lower_bound_single_user(instance, num_rounds),
                  lower_bound_amgm(instance, num_rounds));
}

Instance hard_instance_8cells() {
  const double s = 1.0 / 7.0;
  return Instance::from_rows({
      {2 * s, s, s, s, s, s, 0.0, 0.0},
      {0.0, s, s, s, s, s, s, s},
  });
}

RationalInstance hard_instance_8cells_exact() {
  using prob::Rational;
  const Rational s(1, 7);
  const Rational z(0);
  std::vector<Rational> flat = {
      Rational(2, 7), s, s, s, s, s, z, z,  // device 1
      z, s, s, s, s, s, s, s,               // device 2
  };
  return RationalInstance(2, 8, std::move(flat));
}

Instance hard_instance_8cells_perturbed(double epsilon) {
  if (epsilon <= 0.0 || epsilon >= 1.0 / 7.0) {
    throw std::invalid_argument(
        "hard_instance_8cells_perturbed: need 0 < epsilon < 1/7");
  }
  const double s = 1.0 / 7.0;
  // Moving epsilon of device 2's mass from the last cell to cell 0 makes
  // cell 0 the strict weight maximum; the remaining ties (cells 1..5) are
  // between identical columns, so every tie-breaking rule yields an
  // equivalent strategy.
  return Instance::from_rows({
      {2 * s, s, s, s, s, s, 0.0, 0.0},
      {epsilon, s, s, s, s, s, s, s - epsilon},
  });
}

}  // namespace confcall::core
