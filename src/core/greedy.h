// The paper's approximation algorithm (Section 4, Fig. 1).
//
// Step 1: order cells by non-increasing expected number of sought devices
//         (cell weight Σ_i p(i,j)), ties broken by cell index — exactly
//         the sequencing of Section 4.2.
// Step 2: dynamic program of Lemma 4.7 over that order: E(ℓ, k) is the
//         minimal expected number of cells paged by an ℓ-round strategy
//         over the LAST k cells of the order, conditioned on the search
//         still being live when it reaches them. The recurrence
//
//           E(1, k) = k
//           E(ℓ, k) = min_{1≤x≤k−ℓ+1} x + (1−F[c−k+x])/(1−F[c−k])·E(ℓ−1, k−x)
//
//         is evaluated bottom-up; backtracking the minimizing x recovers
//         the group sizes g_1,…,g_d (lines 26–29 of Fig. 1).
//
// Theorem 4.8: the resulting strategy pages at most e/(e−1) ≈ 1.582 times
// the optimal expected number of cells, and is found in O(c(m+dc)) time.
//
// The DP itself is valid for ANY caller-supplied cell order (the remark at
// the end of Section 4.2.2) and for any monotone stopping objective
// (conference call / yellow pages / signature), because it only consumes
// the stop-by-prefix probabilities F[j]. `plan_dp_over_order` exposes that
// general form; `plan_greedy` is Fig. 1 verbatim.
#pragma once

#include <cstddef>
#include <vector>

#include "core/instance.h"
#include "core/objective.h"
#include "core/strategy.h"

namespace confcall::core {

/// Output of a planner: the strategy plus bookkeeping that tests, benches
/// and the adaptive planner want to inspect.
struct PlanResult {
  Strategy strategy;
  /// Expected paging of `strategy` under the instance/objective it was
  /// planned for (recomputed via Lemma 2.1, not read off the DP table).
  double expected_paging = 0.0;
  /// The cell order the DP partitioned.
  std::vector<CellId> order;
  /// The group sizes g_1,…,g_d chosen by the DP.
  std::vector<std::size_t> group_sizes;
};

/// The Section 4.2 cell order: non-increasing cell weight Σ_i p(i,j), ties
/// by ascending cell index (this tie-break reproduces the paper's
/// Section 4.3 analysis, where the heuristic picks cell 1 of the hard
/// instance first).
std::vector<CellId> greedy_cell_order(const Instance& instance);

/// Fig. 1 of the paper: greedy order + Lemma 4.7 DP. Throws
/// std::invalid_argument unless 1 <= d <= c.
///
/// For m = 1 this is exactly the optimal single-user algorithm of
/// Goodman–Krishnan–Sugla / Rose–Yates (see single_user.h); for m >= 2 it
/// is an e/(e−1)-approximation (Theorem 4.8).
PlanResult plan_greedy(const Instance& instance, std::size_t num_rounds,
                       const Objective& objective = Objective::all_of());

/// Lemma 4.7 DP over an arbitrary caller-given cell order (must be a
/// permutation of {0..c-1}).
///
/// `max_group_size` bounds every |S_r| (0 = unbounded) — the Section 5
/// bandwidth-limited model; the x-range of the recurrence is restricted
/// accordingly. Throws std::invalid_argument when d*max_group_size < c
/// (no feasible strategy).
PlanResult plan_dp_over_order(const Instance& instance,
                              std::vector<CellId> order,
                              std::size_t num_rounds,
                              const Objective& objective = Objective::all_of(),
                              std::size_t max_group_size = 0);

/// Stop-by-prefix probabilities for a cell order: F[j] = Pr[objective met
/// within the first j cells of `order`], j = 0..c. F[0] = 0, F[c] = 1.
std::vector<double> stop_by_prefix(const Instance& instance,
                                   std::span<const CellId> order,
                                   const Objective& objective);

/// The e/(e−1) bound of Theorem 4.8.
inline constexpr double kApproximationFactor = 1.5819767068693265;

}  // namespace confcall::core
