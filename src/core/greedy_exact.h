// Fig. 1 in exact rational arithmetic.
//
// The double-precision planner (greedy.h) is what production would run;
// this twin executes the same two phases — weight ordering, Lemma 4.7
// DP — over a RationalInstance with no rounding anywhere, so statements
// like "the heuristic's expected paging on the Section 4.3 instance is
// exactly 320/49" are produced by the PLANNER, not by evaluating a
// hand-written strategy. Intended for certificates on small instances
// (rational DP values grow denominators quickly); the conference-call
// (all-of) objective only.
#pragma once

#include <cstddef>
#include <vector>

#include "core/instance.h"
#include "core/strategy.h"
#include "prob/rational.h"

namespace confcall::core {

/// Planner output with the exact expected paging.
struct RationalPlanResult {
  Strategy strategy;
  prob::Rational expected_paging;
  std::vector<CellId> order;
  std::vector<std::size_t> group_sizes;
};

/// The Section 4.2 order under exact comparison: non-increasing cell
/// weight sum_i p(i,j), ties by ascending index.
std::vector<CellId> greedy_cell_order_exact(const RationalInstance& instance);

/// Fig. 1 with every intermediate value an exact rational. Throws
/// std::invalid_argument unless 1 <= d <= c.
RationalPlanResult plan_greedy_exact(const RationalInstance& instance,
                                     std::size_t num_rounds);

}  // namespace confcall::core
