#include "core/bandwidth.h"

#include <numeric>
#include <stdexcept>

namespace confcall::core {

PlanResult plan_bandwidth_limited(const Instance& instance,
                                  std::size_t num_rounds,
                                  std::size_t max_cells_per_round,
                                  const Objective& objective) {
  if (max_cells_per_round == 0) {
    throw std::invalid_argument(
        "plan_bandwidth_limited: zero cells per round");
  }
  return plan_dp_over_order(instance, greedy_cell_order(instance), num_rounds,
                            objective, max_cells_per_round);
}

std::size_t min_rounds_for_bandwidth(std::size_t num_cells,
                                     std::size_t max_cells_per_round) {
  if (num_cells == 0 || max_cells_per_round == 0) {
    throw std::invalid_argument("min_rounds_for_bandwidth: zero argument");
  }
  return (num_cells + max_cells_per_round - 1) / max_cells_per_round;
}

Strategy chunked_blanket(std::size_t num_cells,
                         std::size_t max_cells_per_round) {
  const std::size_t rounds =
      min_rounds_for_bandwidth(num_cells, max_cells_per_round);
  std::vector<CellId> order(num_cells);
  std::iota(order.begin(), order.end(), CellId{0});
  std::vector<std::size_t> sizes;
  sizes.reserve(rounds);
  std::size_t left = num_cells;
  while (left > 0) {
    const std::size_t take = std::min(left, max_cells_per_round);
    sizes.push_back(take);
    left -= take;
  }
  return Strategy::from_order_and_sizes(order, sizes);
}

}  // namespace confcall::core
