// Search-stopping objectives.
//
// The Conference Call problem stops paging when ALL sought devices are
// found. Section 5 of the paper introduces two relatives: the Yellow Pages
// problem (stop when ANY ONE device is found) and the Signature problem
// (stop when at least k of the m devices are found — "k managers signing a
// document"). All three share the generalized Lemma 2.1 identity
//
//   EP = c − Σ_{r=1}^{d−1} |S_{r+1}| · Pr[search stops by round r],
//
// where Pr[stop by r] is a symmetric function of the per-device prefix
// probabilities q_i = P_i(S_1 ∪ … ∪ S_r). This type encapsulates that
// function so evaluators and planners are objective-agnostic.
#pragma once

#include <cstddef>
#include <span>
#include <string>

namespace confcall::core {

/// Which devices must be found before paging can stop.
enum class SearchMode {
  kAllOf,  ///< Conference Call: every device (k = m).
  kAnyOf,  ///< Yellow Pages: any single device (k = 1).
  kKOfM,   ///< Signature: at least k devices.
};

/// A stopping objective. Value type; cheap to copy.
class Objective {
 public:
  /// Conference Call objective (the paper's main problem).
  static constexpr Objective all_of() noexcept {
    return Objective(SearchMode::kAllOf, 0);
  }

  /// Yellow Pages objective: stop at the first device found.
  static constexpr Objective any_of() noexcept {
    return Objective(SearchMode::kAnyOf, 1);
  }

  /// Signature objective: stop once at least `k` devices are found
  /// (k >= 1; validated against m at evaluation time).
  static constexpr Objective k_of_m(std::size_t k) noexcept {
    return Objective(SearchMode::kKOfM, k);
  }

  [[nodiscard]] constexpr SearchMode mode() const noexcept { return mode_; }

  /// The threshold k for kKOfM (1 for kAnyOf; meaningless for kAllOf,
  /// which always uses m).
  [[nodiscard]] constexpr std::size_t k() const noexcept { return k_; }

  /// The number of devices that must be found out of `num_devices`.
  [[nodiscard]] std::size_t required(std::size_t num_devices) const;

  /// Pr[the search may stop] given q_i = P[device i lies in the prefix of
  /// cells paged so far]. For kAllOf this is Π q_i; for kAnyOf it is
  /// 1 − Π(1−q_i); for kKOfM it is the Poisson-binomial upper tail
  /// Pr[#found ≥ k], computed by an O(m·k) DP. Throws
  /// std::invalid_argument when k is 0 or exceeds the device count.
  [[nodiscard]] double stop_probability(
      std::span<const double> device_prefix_probs) const;

  /// True when the number of devices already found meets the objective.
  [[nodiscard]] bool satisfied(std::size_t found,
                               std::size_t num_devices) const {
    return found >= required(num_devices);
  }

  [[nodiscard]] std::string to_string() const;

  friend constexpr bool operator==(const Objective&,
                                   const Objective&) = default;

 private:
  constexpr Objective(SearchMode mode, std::size_t k) noexcept
      : mode_(mode), k_(k) {}

  SearchMode mode_;
  std::size_t k_;
};

}  // namespace confcall::core
