#include "core/adaptive.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "core/greedy.h"

namespace confcall::core {

namespace {

/// Conditional sub-instance over `cells` for the devices in `devices`.
/// Unlike Instance::restrict_cells this tolerates a device whose model
/// mass on the remaining cells is (numerically) zero — the observation
/// "still unfound" then contradicts the model, and we fall back to a
/// uniform conditional, which is the standard maximum-entropy repair.
Instance conditional_instance(const Instance& instance,
                              std::span<const DeviceId> devices,
                              std::span<const CellId> cells) {
  std::vector<double> flat;
  flat.reserve(devices.size() * cells.size());
  for (const DeviceId device : devices) {
    double mass = 0.0;
    for (const CellId cell : cells) mass += instance.prob(device, cell);
    if (mass > 1e-15) {
      for (const CellId cell : cells) {
        flat.push_back(instance.prob(device, cell) / mass);
      }
    } else {
      const double uniform = 1.0 / static_cast<double>(cells.size());
      for (std::size_t j = 0; j < cells.size(); ++j) flat.push_back(uniform);
    }
  }
  return Instance(devices.size(), cells.size(), std::move(flat));
}

/// The objective that remains after `found` devices have been located,
/// expressed over the unfound devices only.
Objective remaining_objective(const Objective& objective, std::size_t found,
                              std::size_t total_devices) {
  switch (objective.mode()) {
    case SearchMode::kAllOf:
      return Objective::all_of();
    case SearchMode::kAnyOf:
      return Objective::any_of();
    case SearchMode::kKOfM: {
      const std::size_t needed = objective.required(total_devices) - found;
      return Objective::k_of_m(needed);
    }
  }
  throw std::logic_error("remaining_objective: unknown mode");
}

}  // namespace

AdaptiveOutcome run_adaptive(const Instance& instance, std::size_t num_rounds,
                             std::span<const CellId> true_locations,
                             const Objective& objective) {
  const std::size_t c = instance.num_cells();
  const std::size_t m = instance.num_devices();
  if (true_locations.size() != m) {
    throw std::invalid_argument("run_adaptive: one location per device");
  }
  for (const CellId cell : true_locations) {
    if (cell >= c) {
      throw std::invalid_argument("run_adaptive: location out of range");
    }
  }
  if (num_rounds == 0 || num_rounds > c) {
    throw std::invalid_argument("run_adaptive: need 1 <= d <= c");
  }
  const std::size_t needed = objective.required(m);

  std::vector<CellId> remaining(c);
  for (std::size_t j = 0; j < c; ++j) remaining[j] = static_cast<CellId>(j);
  std::vector<DeviceId> unfound(m);
  for (std::size_t i = 0; i < m; ++i) unfound[i] = static_cast<DeviceId>(i);

  AdaptiveOutcome outcome;
  std::size_t rounds_left = num_rounds;
  while (!objective.satisfied(outcome.devices_found, m)) {
    std::vector<CellId> page_now;
    if (rounds_left <= 1 || remaining.size() <= rounds_left) {
      // Last chance (or nothing left to split): page everything remaining.
      page_now = remaining;
    } else {
      const Instance sub = conditional_instance(instance, unfound, remaining);
      const Objective sub_objective =
          remaining_objective(objective, outcome.devices_found, m);
      const PlanResult plan =
          plan_greedy(sub, rounds_left, sub_objective);
      page_now.reserve(plan.strategy.group(0).size());
      for (const CellId local : plan.strategy.group(0)) {
        page_now.push_back(remaining[local]);
      }
    }

    outcome.cells_paged += page_now.size();
    outcome.rounds_used += 1;
    rounds_left -= 1;

    // Observe: which unfound devices sit in the paged cells?
    std::vector<DeviceId> still_unfound;
    still_unfound.reserve(unfound.size());
    for (const DeviceId device : unfound) {
      const CellId location = true_locations[device];
      const bool paged = std::find(page_now.begin(), page_now.end(),
                                   location) != page_now.end();
      if (paged) {
        ++outcome.devices_found;
      } else {
        still_unfound.push_back(device);
      }
    }
    unfound = std::move(still_unfound);

    std::vector<CellId> still_remaining;
    still_remaining.reserve(remaining.size() - page_now.size());
    for (const CellId cell : remaining) {
      if (std::find(page_now.begin(), page_now.end(), cell) ==
          page_now.end()) {
        still_remaining.push_back(cell);
      }
    }
    remaining = std::move(still_remaining);

    if (outcome.devices_found >= needed) break;
    if (remaining.empty()) break;  // everything paged; objective met by now
  }
  return outcome;
}

double adaptive_expected_paging_exact(const Instance& instance,
                                      std::size_t num_rounds,
                                      const Objective& objective,
                                      std::uint64_t enumeration_limit) {
  const std::size_t c = instance.num_cells();
  const std::size_t m = instance.num_devices();
  double vectors = 1.0;
  for (std::size_t i = 0; i < m; ++i) vectors *= static_cast<double>(c);
  if (vectors > static_cast<double>(enumeration_limit)) {
    throw std::invalid_argument(
        "adaptive_expected_paging_exact: c^m exceeds the enumeration "
        "limit; use adaptive_expected_paging (Monte Carlo)");
  }

  // Odometer over location vectors; skip zero-probability outcomes.
  std::vector<CellId> locations(m, 0);
  double expectation = 0.0;
  for (;;) {
    double probability = 1.0;
    for (std::size_t i = 0; i < m; ++i) {
      probability *=
          instance.prob(static_cast<DeviceId>(i), locations[i]);
      if (probability == 0.0) break;
    }
    if (probability > 0.0) {
      const AdaptiveOutcome outcome =
          run_adaptive(instance, num_rounds, locations, objective);
      expectation +=
          probability * static_cast<double>(outcome.cells_paged);
    }
    std::size_t idx = 0;
    while (idx < m) {
      if (++locations[idx] < c) break;
      locations[idx] = 0;
      ++idx;
    }
    if (idx == m) break;
  }
  return expectation;
}

MonteCarloEstimate adaptive_expected_paging(const Instance& instance,
                                            std::size_t num_rounds,
                                            std::size_t trials, prob::Rng& rng,
                                            const Objective& objective) {
  if (trials == 0) {
    throw std::invalid_argument("adaptive_expected_paging: zero trials");
  }
  double sum = 0.0;
  double sum_sq = 0.0;
  for (std::size_t t = 0; t < trials; ++t) {
    const std::vector<CellId> locations = sample_locations(instance, rng);
    const AdaptiveOutcome outcome =
        run_adaptive(instance, num_rounds, locations, objective);
    const double paged = static_cast<double>(outcome.cells_paged);
    sum += paged;
    sum_sq += paged * paged;
  }
  MonteCarloEstimate estimate;
  estimate.trials = trials;
  estimate.mean = sum / static_cast<double>(trials);
  const double variance =
      trials > 1 ? std::max(0.0, (sum_sq - sum * sum /
                                               static_cast<double>(trials)) /
                                     static_cast<double>(trials - 1))
                 : 0.0;
  estimate.std_error = std::sqrt(variance / static_cast<double>(trials));
  return estimate;
}

}  // namespace confcall::core
