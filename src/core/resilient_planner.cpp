#include "core/resilient_planner.h"

#include <chrono>
#include <exception>
#include <stdexcept>

namespace confcall::core {

ResilientPlanner::ResilientPlanner(
    std::vector<std::unique_ptr<Planner>> chain, Budget budget)
    : chain_(std::move(chain)),
      budget_(budget),
      served_(chain_.size(), 0) {
  if (chain_.empty()) {
    throw std::invalid_argument("ResilientPlanner: empty chain");
  }
  for (const auto& tier : chain_) {
    if (tier == nullptr) {
      throw std::invalid_argument("ResilientPlanner: null tier");
    }
  }
  if (budget_.time_limit_seconds < 0.0) {
    throw std::invalid_argument(
        "ResilientPlanner: negative time limit");
  }
}

std::unique_ptr<ResilientPlanner> ResilientPlanner::standard(
    Budget budget) {
  std::vector<std::unique_ptr<Planner>> chain;
  chain.push_back(std::make_unique<TypedExactPlanner>());
  chain.push_back(std::make_unique<GreedyPlanner>());
  chain.push_back(std::make_unique<BlanketPlanner>());
  return std::make_unique<ResilientPlanner>(std::move(chain), budget);
}

std::string ResilientPlanner::name() const {
  std::string name = "resilient(";
  for (std::size_t i = 0; i < chain_.size(); ++i) {
    if (i > 0) name += '>';
    name += chain_[i]->name();
  }
  name += ')';
  return name;
}

Strategy ResilientPlanner::plan(const Instance& instance,
                                std::size_t num_rounds) const {
  using Clock = std::chrono::steady_clock;
  const Clock::time_point start = Clock::now();
  const auto over_budget = [&] {
    if (budget_.time_limit_seconds <= 0.0) return false;
    const std::chrono::duration<double> elapsed = Clock::now() - start;
    return elapsed.count() > budget_.time_limit_seconds;
  };

  std::exception_ptr last_error;
  for (std::size_t i = 0; i < chain_.size(); ++i) {
    const bool final_tier = i + 1 == chain_.size();
    // A non-final tier is not even attempted once the clock ran out:
    // its answer would arrive after the call-setup deadline. The final
    // tier always runs — returning SOMETHING is the whole point.
    if (!final_tier && over_budget()) {
      ++failovers_;
      continue;
    }
    try {
      Strategy strategy = chain_[i]->plan(instance, num_rounds);
      if (!final_tier && over_budget()) {
        // The tier answered, but too late to use; degrade onward.
        ++failovers_;
        continue;
      }
      ++served_[i];
      last_tier_ = i;
      return strategy;
    } catch (const std::invalid_argument&) {
      ++failovers_;
      last_error = std::current_exception();
    } catch (const std::runtime_error&) {
      ++failovers_;
      last_error = std::current_exception();
    }
  }
  std::rethrow_exception(last_error);
}

}  // namespace confcall::core
