#include "core/resilient_planner.h"

#include <chrono>
#include <exception>
#include <stdexcept>

namespace confcall::core {

ResilientPlanner::ResilientPlanner(
    std::vector<std::unique_ptr<Planner>> chain, Budget budget,
    const support::ClockSource& clock,
    support::CircuitBreakerOptions breaker_options,
    support::MetricRegistry* registry)
    : chain_(std::move(chain)), budget_(budget), clock_(&clock) {
  if (chain_.empty()) {
    throw std::invalid_argument("ResilientPlanner: empty chain");
  }
  for (const auto& tier : chain_) {
    if (tier == nullptr) {
      throw std::invalid_argument("ResilientPlanner: null tier");
    }
  }
  if (budget_.time_limit_seconds < 0.0) {
    throw std::invalid_argument(
        "ResilientPlanner: negative time limit");
  }
  breaker_options.validate();
  if (registry == nullptr) {
    owned_registry_ = std::make_unique<support::MetricRegistry>();
    registry = owned_registry_.get();
  }
  registry_ = registry;
  served_metric_.reserve(chain_.size());
  for (std::size_t i = 0; i < chain_.size(); ++i) {
    served_metric_.push_back(registry_->counter(
        "confcall_planner_tier_served_total",
        "plan() calls served per fallback-chain tier (0 = preferred)",
        {{"tier", std::to_string(i)}}));
  }
  failovers_metric_ = registry_->counter(
      "confcall_planner_failovers_total",
      "Tier failures and skips across all plan() calls");
  breaker_skips_metric_ = registry_->counter(
      "confcall_planner_breaker_skips_total",
      "Tier attempts refused by an open breaker (subset of failovers)");
  plan_latency_metric_ = registry_->histogram(
      "confcall_planner_plan_latency_ns",
      support::HistogramSpec::exponential(256.0, 4.0, 16),
      "End-to-end plan() latency on the planner's injected clock "
      "(all-zero under a ManualClock)");
  breakers_.reserve(chain_.size() - 1);
  for (std::size_t i = 0; i + 1 < chain_.size(); ++i) {
    breakers_.push_back(
        std::make_unique<support::CircuitBreaker>(breaker_options, clock));
    breakers_.back()->bind_metrics(registry_->counter(
        "confcall_planner_breaker_trips_total",
        "Breaker trips per guarded (non-final) tier",
        {{"tier", std::to_string(i)}}));
  }
}

std::unique_ptr<ResilientPlanner> ResilientPlanner::standard(
    Budget budget, support::MetricRegistry* registry) {
  std::vector<std::unique_ptr<Planner>> chain;
  chain.push_back(std::make_unique<TypedExactPlanner>());
  chain.push_back(std::make_unique<GreedyPlanner>());
  chain.push_back(std::make_unique<BlanketPlanner>());
  return std::make_unique<ResilientPlanner>(
      std::move(chain), budget, support::SteadyClockSource::shared(),
      support::CircuitBreakerOptions{}, registry);
}

std::string ResilientPlanner::name() const {
  std::string name = "resilient(";
  for (std::size_t i = 0; i < chain_.size(); ++i) {
    if (i > 0) name += '>';
    name += chain_[i]->name();
  }
  name += ')';
  return name;
}

std::vector<std::uint64_t> ResilientPlanner::served_counts() const {
  std::vector<std::uint64_t> counts;
  counts.reserve(served_metric_.size());
  for (const support::Counter& counter : served_metric_) {
    counts.push_back(counter.value());
  }
  return counts;
}

std::uint64_t ResilientPlanner::breaker_trips() const {
  std::uint64_t trips = 0;
  for (const auto& breaker : breakers_) trips += breaker->trips();
  return trips;
}

Strategy ResilientPlanner::plan(const Instance& instance,
                                std::size_t num_rounds) const {
  return plan_impl(instance, num_rounds, support::Deadline::unbounded());
}

Strategy ResilientPlanner::plan(const Instance& instance,
                                std::size_t num_rounds,
                                support::Deadline deadline) const {
  return plan_impl(instance, num_rounds, deadline);
}

Strategy ResilientPlanner::plan_impl(const Instance& instance,
                                     std::size_t num_rounds,
                                     support::Deadline deadline) const {
  using Clock = std::chrono::steady_clock;
  const Clock::time_point start = Clock::now();
  // Latency is observed on the INJECTED clock, not steady_clock: under a
  // ManualClock every call records 0 and the simulator's snapshots stay
  // bit-identical across thread counts and runs.
  const std::uint64_t start_ns = clock_->now_ns();
  const auto observe_latency = [&] {
    plan_latency_metric_.observe(
        static_cast<double>(clock_->now_ns() - start_ns));
  };
  const auto over_budget = [&] {
    if (!deadline.is_unbounded() && deadline.expired(*clock_)) return true;
    if (budget_.time_limit_seconds <= 0.0) return false;
    const std::chrono::duration<double> elapsed = Clock::now() - start;
    return elapsed.count() > budget_.time_limit_seconds;
  };

  std::exception_ptr last_error;
  for (std::size_t i = 0; i < chain_.size(); ++i) {
    const bool final_tier = i + 1 == chain_.size();
    // A non-final tier is not even attempted once the clock ran out:
    // its answer would arrive after the call-setup deadline. The final
    // tier always runs — returning SOMETHING is the whole point. A
    // budget/deadline skip is not the tier's fault, so its breaker sees
    // nothing.
    if (!final_tier && over_budget()) {
      failovers_metric_.inc();
      continue;
    }
    // An open breaker means this tier has been failing recently: skip it
    // before spending any work on it.
    if (!final_tier && !breakers_[i]->allow()) {
      failovers_metric_.inc();
      breaker_skips_metric_.inc();
      continue;
    }
    try {
      Strategy strategy = chain_[i]->plan(instance, num_rounds);
      if (!final_tier && over_budget()) {
        // The tier answered, but too late to use; that counts against
        // its breaker just like a failure — a chronically slow tier
        // must be skipped, not politely waited for.
        breakers_[i]->record_failure();
        failovers_metric_.inc();
        continue;
      }
      if (!final_tier) breakers_[i]->record_success();
      served_metric_[i].inc();
      last_tier_.store(i, std::memory_order_relaxed);
      observe_latency();
      return strategy;
    } catch (const std::invalid_argument&) {
      if (!final_tier) breakers_[i]->record_failure();
      failovers_metric_.inc();
      last_error = std::current_exception();
    } catch (const std::runtime_error&) {
      if (!final_tier) breakers_[i]->record_failure();
      failovers_metric_.inc();
      last_error = std::current_exception();
    }
  }
  observe_latency();
  std::rethrow_exception(last_error);
}

}  // namespace confcall::core
