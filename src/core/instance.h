// Problem instances for the Conference Call problem (Section 1.2 of the
// paper): m mobile devices, c cells, and an m-by-c matrix of location
// probabilities with unit row sums.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "prob/distribution.h"
#include "prob/rational.h"

namespace confcall::core {

/// Index of a cell within the location area, 0-based (the paper uses 1..c).
using CellId = std::uint32_t;

/// Index of a mobile device, 0-based.
using DeviceId = std::uint32_t;

/// An instance of the Conference Call problem: the location-probability
/// matrix for all devices being sought.
///
/// The paper assumes strictly positive probabilities; we relax that to
/// non-negative because the paper's own Section 4.3 lower-bound instance
/// uses zeros, and every algorithm here handles zero entries. Row sums must
/// be 1 within `kRowSumTolerance`.
class Instance {
 public:
  /// Row-sum slack accepted at construction (accumulated float error from
  /// generators).
  static constexpr double kRowSumTolerance = 1e-9;

  /// Builds an instance from a row-major m-by-c matrix. Throws
  /// std::invalid_argument when dimensions are zero, the matrix size does
  /// not match, an entry is negative/non-finite, or a row sum is off by
  /// more than kRowSumTolerance.
  Instance(std::size_t num_devices, std::size_t num_cells,
           std::vector<double> row_major_probabilities);

  /// Builds an instance from one probability vector per device; all rows
  /// must have the same length.
  static Instance from_rows(const std::vector<prob::ProbabilityVector>& rows);

  /// All m devices uniformly distributed over c cells.
  static Instance uniform(std::size_t num_devices, std::size_t num_cells);

  [[nodiscard]] std::size_t num_devices() const noexcept { return devices_; }
  [[nodiscard]] std::size_t num_cells() const noexcept { return cells_; }

  /// P[device i is in cell j].
  [[nodiscard]] double prob(DeviceId device, CellId cell) const {
    return probs_[static_cast<std::size_t>(device) * cells_ + cell];
  }

  /// The full probability row of one device.
  [[nodiscard]] std::span<const double> row(DeviceId device) const {
    return {probs_.data() + static_cast<std::size_t>(device) * cells_, cells_};
  }

  /// The probability column of one cell: P[device i in `cell`] for every i,
  /// contiguous. The evaluator/DP inner loops sweep per-device lanes over
  /// one cell at a time; this column-major mirror (built once at
  /// construction) turns those sweeps into unit-stride loads the compiler
  /// auto-vectorizes, where prob(i, cell) strides by c.
  [[nodiscard]] std::span<const double> column(CellId cell) const {
    return {cols_.data() + static_cast<std::size_t>(cell) * devices_,
            devices_};
  }

  /// Expected number of sought devices in cell j: sum_i p(i, j). This is
  /// the score by which the paper's heuristic (Section 4) orders cells.
  [[nodiscard]] double cell_weight(CellId cell) const;

  /// cell_weight for every cell.
  [[nodiscard]] std::vector<double> cell_weights() const;

  /// A new instance restricted to `devices` (rows copied in the given
  /// order). Used by the adaptive planner after some devices are found.
  [[nodiscard]] Instance select_devices(
      std::span<const DeviceId> devices) const;

  /// A new instance over only `cells` (columns copied in the given order),
  /// with every row renormalized to sum 1. Throws std::invalid_argument if
  /// a device has zero mass on the kept cells (conditioning on an
  /// impossible event). Used by the adaptive planner after some cells have
  /// been paged.
  [[nodiscard]] Instance restrict_cells(std::span<const CellId> cells) const;

  /// Human-readable dump (small instances; tests and examples).
  [[nodiscard]] std::string to_string() const;

 private:
  std::size_t devices_;
  std::size_t cells_;
  std::vector<double> probs_;  // row-major m x c
  std::vector<double> cols_;   // column-major mirror (c x m) of probs_
};

/// Exact-rational counterpart of Instance, for proofs-by-computation.
/// Row sums must equal 1 exactly.
class RationalInstance {
 public:
  RationalInstance(std::size_t num_devices, std::size_t num_cells,
                   std::vector<prob::Rational> row_major_probabilities);

  [[nodiscard]] std::size_t num_devices() const noexcept { return devices_; }
  [[nodiscard]] std::size_t num_cells() const noexcept { return cells_; }

  [[nodiscard]] const prob::Rational& prob(DeviceId device,
                                           CellId cell) const {
    return probs_[static_cast<std::size_t>(device) * cells_ + cell];
  }

  /// Nearest-double conversion of every entry (rows renormalized are NOT
  /// needed: double row sums stay within Instance::kRowSumTolerance for the
  /// magnitudes used here).
  [[nodiscard]] Instance to_double_instance() const;

 private:
  std::size_t devices_;
  std::size_t cells_;
  std::vector<prob::Rational> probs_;
};

}  // namespace confcall::core
