// Planners for the Section 5 search variants.
//
//  * Yellow Pages — find ANY ONE of the m devices (k = 1). The paper notes
//    the conference-call heuristic (order by Σ_i p(i,j)) does NOT give a
//    constant factor here, and reports an m-approximation based on a
//    different ordering.
//  * Signature — find at least k of the m devices ("k managers must sign").
//    Generalizes both: k = m is the conference call, k = 1 yellow pages.
//
// Both reuse the Lemma 4.7 DP (which is exact for any fixed order and any
// monotone stopping objective); what changes is the cell ordering. We
// expose three scores:
//
//  * kSumProb  — Σ_i p(i,j), the paper's conference-call score;
//  * kMaxProb  — max_i p(i,j), natural for yellow pages (a cell is good if
//    SOME device is likely there);
//  * kTopK     — sum of the k largest p(i,j) over devices, interpolating
//    between the two (k = 1 → kMaxProb, k = m → kSumProb).
#pragma once

#include <cstddef>
#include <vector>

#include "core/greedy.h"

namespace confcall::core {

/// Cell-ordering score for the variant planners.
enum class CellScore {
  kSumProb,
  kMaxProb,
  kTopK,
};

/// Cells sorted by non-increasing score (ties by index). `k` is consumed
/// only by kTopK.
std::vector<CellId> score_cell_order(const Instance& instance, CellScore score,
                                     std::size_t k);

/// Yellow Pages planner: kMaxProb order + DP under the any-of objective.
PlanResult plan_yellow_pages(const Instance& instance, std::size_t num_rounds,
                             CellScore score = CellScore::kMaxProb);

/// Signature planner: kTopK order + DP under the k-of-m objective.
/// Throws std::invalid_argument unless 1 <= k <= m.
PlanResult plan_signature(const Instance& instance, std::size_t num_rounds,
                          std::size_t k,
                          CellScore score = CellScore::kTopK);

/// A witness family for the paper's Section 5 claim that the
/// conference-call heuristic (sum-score ordering) has NO constant factor
/// for the Yellow Pages problem. m >= 4 devices over c = m - 1 cells:
/// device 0 sits in cell 0 with certainty (any-of optimum pages just that
/// cell: EP = 1), while devices 1..m-1 spread uniformly over the m - 2
/// "decoy" cells, giving every decoy the LARGER column sum
/// (m-1)/(m-2) > 1. The sum-score order therefore pages all decoys before
/// cell 0 and its best d = 2 split costs ~ln m — an unbounded ratio. The
/// max-score order is immune. Throws std::invalid_argument when m < 4.
Instance yellow_pages_hard_instance(std::size_t m);

}  // namespace confcall::core
