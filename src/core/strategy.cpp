#include "core/strategy.h"

#include <limits>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace confcall::core {

namespace {
constexpr std::size_t kUnassigned = std::numeric_limits<std::size_t>::max();
}  // namespace

Strategy Strategy::from_groups(std::vector<std::vector<CellId>> groups,
                               std::size_t num_cells) {
  if (groups.empty()) {
    throw std::invalid_argument("Strategy: no groups");
  }
  if (num_cells == 0) {
    throw std::invalid_argument("Strategy: zero cells");
  }
  std::vector<std::size_t> round_of(num_cells, kUnassigned);
  for (std::size_t r = 0; r < groups.size(); ++r) {
    if (groups[r].empty()) {
      throw std::invalid_argument("Strategy: empty group in round " +
                                  std::to_string(r));
    }
    for (const CellId cell : groups[r]) {
      if (cell >= num_cells) {
        throw std::invalid_argument("Strategy: cell out of range");
      }
      if (round_of[cell] != kUnassigned) {
        throw std::invalid_argument("Strategy: cell " + std::to_string(cell) +
                                    " paged twice");
      }
      round_of[cell] = r;
    }
  }
  for (std::size_t cell = 0; cell < num_cells; ++cell) {
    if (round_of[cell] == kUnassigned) {
      throw std::invalid_argument("Strategy: cell " + std::to_string(cell) +
                                  " never paged");
    }
  }
  return Strategy(std::move(groups), num_cells, std::move(round_of));
}

Strategy Strategy::from_order_and_sizes(std::span<const CellId> order,
                                        std::span<const std::size_t> sizes) {
  const std::size_t total =
      std::accumulate(sizes.begin(), sizes.end(), std::size_t{0});
  if (total != order.size()) {
    throw std::invalid_argument(
        "Strategy: group sizes do not sum to the order length");
  }
  std::vector<std::vector<CellId>> groups;
  groups.reserve(sizes.size());
  std::size_t pos = 0;
  for (const std::size_t size : sizes) {
    if (size == 0) throw std::invalid_argument("Strategy: zero group size");
    groups.emplace_back(order.begin() + static_cast<std::ptrdiff_t>(pos),
                        order.begin() + static_cast<std::ptrdiff_t>(pos + size));
    pos += size;
  }
  return from_groups(std::move(groups), order.size());
}

Strategy Strategy::blanket(std::size_t num_cells) {
  std::vector<CellId> all(num_cells);
  std::iota(all.begin(), all.end(), CellId{0});
  return from_groups({std::move(all)}, num_cells);
}

std::vector<std::size_t> Strategy::group_sizes() const {
  std::vector<std::size_t> sizes;
  sizes.reserve(groups_.size());
  for (const auto& group : groups_) sizes.push_back(group.size());
  return sizes;
}

std::size_t Strategy::cells_paged_through(std::size_t round) const {
  if (round >= groups_.size()) {
    throw std::invalid_argument("Strategy: round out of range");
  }
  std::size_t total = 0;
  for (std::size_t r = 0; r <= round; ++r) total += groups_[r].size();
  return total;
}

std::string Strategy::to_string() const {
  std::ostringstream os;
  for (std::size_t r = 0; r < groups_.size(); ++r) {
    if (r != 0) os << '|';
    os << '{';
    for (std::size_t k = 0; k < groups_[r].size(); ++k) {
      if (k != 0) os << ',';
      os << groups_[r][k];
    }
    os << '}';
  }
  return os.str();
}

}  // namespace confcall::core
