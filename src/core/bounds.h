// Lower bounds on the optimal expected paging, and the paper's named hard
// instances.
//
// The exact solvers (exact.h) blow up past ~12 cells, so large-instance
// approximation ratios are certified against computable lower bounds
// instead:
//
//  * single-user relaxation — finding all devices is at least as expensive
//    as finding any one of them, so OPT >= max_i OPT_1(p_i, d) where
//    OPT_1 is the polynomial single-user optimum;
//  * AM–GM relaxation — the inequality the paper's own analysis rests on
//    (Lemma 4.4/4.6): any prefix of j cells has stop probability at most
//    (W(j)/m)^m, where W(j) is the sum of the j largest cell weights;
//    maximizing the Lemma 2.1 savings term under that cap (a small DP over
//    group-size compositions) lower-bounds every strategy.
#pragma once

#include <cstddef>

#include "core/instance.h"

namespace confcall::core {

/// max_i OPT_1(p_i, d): optimal single-user expected paging of the hardest
/// device. Valid lower bound for the all-of (conference call) objective —
/// including for ADAPTIVE policies on full-support instances (finding all
/// devices includes finding the hardest one, and single-user adaptivity
/// gains nothing).
double lower_bound_single_user(const Instance& instance,
                               std::size_t num_rounds);

/// AM–GM lower bound (see file comment). Valid for the all-of objective
/// and OBLIVIOUS strategies only: it is derived from the Lemma 2.1 form
/// with fixed groups, and the exact optimal-adaptive solver demonstrably
/// beats it at d >= 3 (see test_hierarchy.cpp).
double lower_bound_amgm(const Instance& instance, std::size_t num_rounds);

/// The better (larger) of the two bounds above; bounds every OBLIVIOUS
/// strategy.
double lower_bound_conference(const Instance& instance,
                              std::size_t num_rounds);

/// The Section 4.3 instance witnessing that the Fig. 1 heuristic is no
/// better than a 320/317-approximation: m = 2, c = 8, d = 2,
/// p1 = (2/7, 1/7, 1/7, 1/7, 1/7, 1/7, 0, 0),
/// p2 = (0, 1/7, 1/7, 1/7, 1/7, 1/7, 1/7, 1/7).
/// The optimum pages cells {2..6} first (EP = 317/49); the heuristic pages
/// {1..5} (EP = 320/49). (Paper numbering; 0-based here.)
Instance hard_instance_8cells();

/// Exact-rational version of the Section 4.3 instance.
RationalInstance hard_instance_8cells_exact();

/// The Section 4.3 instance with the tie-break removed: cell weights of
/// the paper's cells 2..6 are perturbed down by `epsilon` (mass moved to
/// cell 1 within each row), forcing ANY implementation of the heuristic —
/// whatever its tie-breaking — to page cells 1..5 first. Requires
/// 0 < epsilon < 1/7.
Instance hard_instance_8cells_perturbed(double epsilon);

}  // namespace confcall::core
