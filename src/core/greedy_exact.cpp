#include "core/greedy_exact.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "core/evaluator.h"

namespace confcall::core {

using prob::Rational;

std::vector<CellId> greedy_cell_order_exact(
    const RationalInstance& instance) {
  const std::size_t c = instance.num_cells();
  const std::size_t m = instance.num_devices();
  std::vector<Rational> weights(c);
  for (std::size_t j = 0; j < c; ++j) {
    for (std::size_t i = 0; i < m; ++i) {
      weights[j] += instance.prob(static_cast<DeviceId>(i),
                                  static_cast<CellId>(j));
    }
  }
  std::vector<CellId> order(c);
  std::iota(order.begin(), order.end(), CellId{0});
  std::stable_sort(order.begin(), order.end(),
                   [&weights](CellId a, CellId b) {
                     return weights[a] > weights[b];
                   });
  return order;
}

RationalPlanResult plan_greedy_exact(const RationalInstance& instance,
                                     std::size_t num_rounds) {
  const std::size_t c = instance.num_cells();
  const std::size_t m = instance.num_devices();
  const std::size_t d = num_rounds;
  if (d == 0 || d > c) {
    throw std::invalid_argument("plan_greedy_exact: need 1 <= d <= c");
  }
  std::vector<CellId> order = greedy_cell_order_exact(instance);

  // F[j] = Pr[all devices within the first j cells of the order].
  std::vector<Rational> stop(c + 1);
  {
    std::vector<Rational> prefix(m);
    stop[0] = Rational(0);
    for (std::size_t j = 0; j < c; ++j) {
      for (std::size_t i = 0; i < m; ++i) {
        prefix[i] += instance.prob(static_cast<DeviceId>(i), order[j]);
      }
      Rational product(1);
      for (const auto& q : prefix) product *= q;
      stop[j + 1] = product;
    }
    stop[c] = Rational(1);
  }

  // Lemma 4.7 DP, exactly. best[l][k] unset is flagged by a parallel
  // boolean (rationals have no infinity).
  std::vector<std::vector<Rational>> best(
      d, std::vector<Rational>(c + 1));
  std::vector<std::vector<bool>> feasible(d,
                                          std::vector<bool>(c + 1, false));
  std::vector<std::vector<std::size_t>> choice(
      d, std::vector<std::size_t>(c + 1, 0));
  const Rational one(1);
  for (std::size_t k = 1; k <= c; ++k) {
    best[0][k] = Rational(static_cast<std::int64_t>(k));
    feasible[0][k] = true;
    choice[0][k] = k;
  }
  for (std::size_t l = 1; l < d; ++l) {
    for (std::size_t k = l + 1; k <= c; ++k) {
      const Rational denom = one - stop[c - k];
      for (std::size_t x = 1; x <= k - l; ++x) {
        if (!feasible[l - 1][k - x]) continue;
        Rational continue_prob(0);
        if (!denom.is_zero()) {
          continue_prob = (one - stop[c - k + x]) / denom;
        }
        const Rational value =
            Rational(static_cast<std::int64_t>(x)) +
            continue_prob * best[l - 1][k - x];
        if (!feasible[l][k] || value < best[l][k]) {
          best[l][k] = value;
          feasible[l][k] = true;
          choice[l][k] = x;
        }
      }
    }
  }
  if (!feasible[d - 1][c]) {
    throw std::logic_error("plan_greedy_exact: no feasible plan (bug)");
  }

  std::vector<std::size_t> sizes(d, 0);
  std::size_t remaining = c;
  for (std::size_t l = d; l-- > 0;) {
    const std::size_t x = choice[l][remaining];
    sizes[d - 1 - l] = x;
    remaining -= x;
  }

  RationalPlanResult result{
      .strategy = Strategy::from_order_and_sizes(order, sizes),
      .expected_paging = Rational(0),
      .order = std::move(order),
      .group_sizes = std::move(sizes),
  };
  result.expected_paging = expected_paging_exact(instance, result.strategy);
  return result;
}

}  // namespace confcall::core
