#include "core/signature.h"

#include <algorithm>
#include <functional>
#include <numeric>
#include <stdexcept>

namespace confcall::core {

std::vector<CellId> score_cell_order(const Instance& instance, CellScore score,
                                     std::size_t k) {
  const std::size_t c = instance.num_cells();
  const std::size_t m = instance.num_devices();
  std::vector<double> values(c, 0.0);
  std::vector<double> column(m);
  for (std::size_t j = 0; j < c; ++j) {
    for (std::size_t i = 0; i < m; ++i) {
      column[i] = instance.prob(static_cast<DeviceId>(i),
                                static_cast<CellId>(j));
    }
    switch (score) {
      case CellScore::kSumProb:
        values[j] = std::accumulate(column.begin(), column.end(), 0.0);
        break;
      case CellScore::kMaxProb:
        values[j] = *std::max_element(column.begin(), column.end());
        break;
      case CellScore::kTopK: {
        if (k == 0 || k > m) {
          throw std::invalid_argument("score_cell_order: k out of [1, m]");
        }
        std::partial_sort(column.begin(),
                          column.begin() + static_cast<std::ptrdiff_t>(k),
                          column.end(), std::greater<>());
        values[j] = std::accumulate(
            column.begin(), column.begin() + static_cast<std::ptrdiff_t>(k),
            0.0);
        break;
      }
    }
  }
  std::vector<CellId> order(c);
  std::iota(order.begin(), order.end(), CellId{0});
  std::stable_sort(order.begin(), order.end(), [&values](CellId a, CellId b) {
    return values[a] > values[b];
  });
  return order;
}

PlanResult plan_yellow_pages(const Instance& instance, std::size_t num_rounds,
                             CellScore score) {
  return plan_dp_over_order(instance,
                            score_cell_order(instance, score, /*k=*/1),
                            num_rounds, Objective::any_of());
}

Instance yellow_pages_hard_instance(std::size_t m) {
  if (m < 4) {
    throw std::invalid_argument(
        "yellow_pages_hard_instance: need m >= 4 (so the decoy sums "
        "exceed 1)");
  }
  const std::size_t c = m - 1;  // cell 0 + (m - 2) decoys
  std::vector<double> flat(m * c, 0.0);
  flat[0] = 1.0;  // device 0 pinned to cell 0
  const double spread = 1.0 / static_cast<double>(m - 2);
  for (std::size_t i = 1; i < m; ++i) {
    for (std::size_t j = 1; j < c; ++j) {
      flat[i * c + j] = spread;
    }
  }
  return Instance(m, c, std::move(flat));
}

PlanResult plan_signature(const Instance& instance, std::size_t num_rounds,
                          std::size_t k, CellScore score) {
  if (k == 0 || k > instance.num_devices()) {
    throw std::invalid_argument("plan_signature: k out of [1, m]");
  }
  return plan_dp_over_order(instance, score_cell_order(instance, score, k),
                            num_rounds, Objective::k_of_m(k));
}

}  // namespace confcall::core
