#include "core/single_user.h"

namespace confcall::core {

PlanResult plan_single_user(const prob::ProbabilityVector& distribution,
                            std::size_t num_rounds) {
  const Instance instance = Instance::from_rows({distribution});
  return plan_greedy(instance, num_rounds);
}

double optimal_single_user_paging(const prob::ProbabilityVector& distribution,
                                  std::size_t num_rounds) {
  return plan_single_user(distribution, num_rounds).expected_paging;
}

}  // namespace confcall::core
