// Adaptive paging (Section 5 of the paper).
//
// An oblivious strategy fixes all d groups in advance. The paper's
// suggested adaptive extension re-plans after every round: devices found so
// far are dropped, each unfound device's distribution is conditioned on the
// still-unpaged cells, and the Fig. 1 planner is re-run for the remaining
// rounds. Round 1 of the adaptive search coincides with round 1 of the
// oblivious plan (same information); from round 2 on the adaptive search
// can only do better in expectation. The paper leaves the performance
// ratio of this scheme open — experiment E6 measures it.
#pragma once

#include <cstddef>
#include <span>

#include "core/evaluator.h"
#include "core/instance.h"
#include "core/objective.h"
#include "prob/rng.h"

namespace confcall::core {

/// Result of one adaptive search against fixed true locations.
struct AdaptiveOutcome {
  std::size_t cells_paged = 0;
  std::size_t rounds_used = 0;
  std::size_t devices_found = 0;
};

/// Runs the adaptive search: plan with Fig. 1, page the first group,
/// observe which devices were found, condition and re-plan with one fewer
/// round. The final round pages every remaining cell, so the objective is
/// always met within `num_rounds` rounds. `true_locations` holds one cell
/// per device. Throws std::invalid_argument on dimension mismatches or
/// d outside [1, c].
AdaptiveOutcome run_adaptive(const Instance& instance, std::size_t num_rounds,
                             std::span<const CellId> true_locations,
                             const Objective& objective = Objective::all_of());

/// Monte-Carlo estimate of the adaptive search's expected paging, sampling
/// device locations from the instance itself.
MonteCarloEstimate adaptive_expected_paging(
    const Instance& instance, std::size_t num_rounds, std::size_t trials,
    prob::Rng& rng, const Objective& objective = Objective::all_of());

/// EXACT expected paging of the adaptive search, by enumerating all c^m
/// joint location vectors (the adaptive run is deterministic given the
/// true locations). Exponential in m — intended for small instances where
/// the adaptive gain must be measured without sampling noise. Throws
/// std::invalid_argument when c^m exceeds `enumeration_limit`.
double adaptive_expected_paging_exact(
    const Instance& instance, std::size_t num_rounds,
    const Objective& objective = Objective::all_of(),
    std::uint64_t enumeration_limit = 2'000'000);

}  // namespace confcall::core
