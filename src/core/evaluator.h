// Expected-paging evaluation (Lemma 2.1 and its generalization to the
// Section 5 objectives), plus diagnostic quantities and a Monte-Carlo
// cross-check estimator.
#pragma once

#include <cstdint>
#include <vector>

#include "core/instance.h"
#include "core/objective.h"
#include "core/strategy.h"
#include "prob/rational.h"
#include "prob/rng.h"
#include "support/thread_pool.h"

namespace confcall::core {

/// Pr[the search stops on or before round r] for r = 0..d-1 (the paper's
/// Pr[F_{r+1}]). The last entry is always 1: a strategy pages every cell,
/// so the objective is met with certainty by the final round.
///
/// Production path: structure-of-arrays Kahan lanes over the instance's
/// contiguous probability columns (auto-vectorized; bit-identical to the
/// scalar reference below because every device's compensated sum performs
/// the same operations in the same order).
std::vector<double> stop_by_round(const Instance& instance,
                                  const Strategy& strategy,
                                  const Objective& objective);

/// Checked reference for stop_by_round: one prob::KahanSum per device,
/// swept with the same templated prefix helper as the exact Rational path.
/// Tests assert the SoA path returns bit-identical values.
std::vector<double> stop_by_round_scalar(const Instance& instance,
                                         const Strategy& strategy,
                                         const Objective& objective);

/// Pr[the search stops exactly at round r], r = 0..d-1.
std::vector<double> stop_at_round(const Instance& instance,
                                  const Strategy& strategy,
                                  const Objective& objective);

/// Expected number of cells paged until the objective is met — Lemma 2.1:
/// EP = c − Σ_{r=1}^{d−1} |S_{r+1}| · Pr[stop by round r]. Throws
/// std::invalid_argument when the strategy's cell count does not match the
/// instance.
double expected_paging(const Instance& instance, const Strategy& strategy,
                       const Objective& objective = Objective::all_of());

/// expected_paging on the scalar (vector-of-KahanSum) reference sweep.
/// Bit-identical to expected_paging by construction; kept callable so the
/// equivalence is a test assertion, not an assumption.
double expected_paging_scalar(
    const Instance& instance, const Strategy& strategy,
    const Objective& objective = Objective::all_of());

/// Expected number of paging rounds used (the delay actually incurred).
double expected_rounds(const Instance& instance, const Strategy& strategy,
                       const Objective& objective = Objective::all_of());

/// Variance of the number of cells paged: Var[P] where
/// E[P^k] = sum_r (|S_1|+…+|S_r|)^k · Pr[stop exactly at r]. Useful for
/// provisioning (confidence bands around the Lemma 2.1 mean).
double paging_variance(const Instance& instance, const Strategy& strategy,
                       const Objective& objective = Objective::all_of());

/// Expected paging computed the slow, definitional way:
/// Σ_r (|S_1|+…+|S_r|) · Pr[stop exactly at r]. Used by tests to validate
/// the Lemma 2.1 closed form against the definition.
double expected_paging_definitional(
    const Instance& instance, const Strategy& strategy,
    const Objective& objective = Objective::all_of());

/// Result of a Monte-Carlo estimate.
struct MonteCarloEstimate {
  double mean = 0.0;       ///< Sample mean of cells paged.
  double std_error = 0.0;  ///< Standard error of the mean.
  std::size_t trials = 0;
};

/// Estimates expected paging by sampling device locations and executing the
/// strategy. Cross-checks the analytic formula in tests and exercises the
/// same code path a real paging controller would run.
MonteCarloEstimate monte_carlo_paging(
    const Instance& instance, const Strategy& strategy, std::size_t trials,
    prob::Rng& rng, const Objective& objective = Objective::all_of());

/// Sharded, thread-count-invariant Monte-Carlo estimate. The `trials` are
/// split across a FIXED number of shards (`shards` = 0 picks
/// min(64, trials)); shard s draws from prob::Rng::substream(seed, s) and
/// its sample moments are merged in shard order, so the estimate depends
/// only on (seed, trials, shards) — never on the pool size or thread
/// scheduling. Throws std::invalid_argument on zero trials or when shards
/// exceeds trials.
MonteCarloEstimate monte_carlo_paging_parallel(
    const Instance& instance, const Strategy& strategy, std::size_t trials,
    std::uint64_t seed, const support::ThreadPool& pool,
    const Objective& objective = Objective::all_of(), std::size_t shards = 0);

/// Samples one cell per device from the instance's rows.
std::vector<CellId> sample_locations(const Instance& instance, prob::Rng& rng);

/// Executes `strategy` against fixed true locations; returns the number of
/// cells paged (and rounds used) until the objective is met.
struct PagingOutcome {
  std::size_t cells_paged = 0;
  std::size_t rounds_used = 0;
};
PagingOutcome execute_strategy(const Strategy& strategy,
                               std::span<const CellId> true_locations,
                               const Objective& objective);

/// Exact-rational expected paging for the Conference Call (all-of)
/// objective — certifies equalities like EP = 317/49 with no rounding.
prob::Rational expected_paging_exact(const RationalInstance& instance,
                                     const Strategy& strategy);

}  // namespace confcall::core
