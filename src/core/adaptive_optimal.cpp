#include "core/adaptive_optimal.h"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <unordered_map>
#include <vector>

namespace confcall::core {

namespace {

using Mask = std::uint32_t;

/// Value-iteration engine; one per solve call.
class OptimalAdaptiveSolver {
 public:
  OptimalAdaptiveSolver(const Instance& instance, std::size_t d,
                        std::size_t required)
      : instance_(instance),
        c_(instance.num_cells()),
        m_(instance.num_devices()),
        d_(d),
        required_(required) {
    // Per-device bit mask of positive-probability cells.
    support_of_device_.resize(m_, 0);
    for (std::size_t i = 0; i < m_; ++i) {
      for (std::size_t j = 0; j < c_; ++j) {
        if (instance_.prob(static_cast<DeviceId>(i),
                           static_cast<CellId>(j)) > 0.0) {
          support_of_device_[i] |= Mask{1} << j;
        }
      }
    }
  }

  double solve() {
    const Mask full_cells = c_ == 32 ? ~Mask{0} : (Mask{1} << c_) - 1;
    const Mask all_devices = (Mask{1} << m_) - 1;
    return value(full_cells, all_devices, d_);
  }

  [[nodiscard]] std::uint64_t states_evaluated() const noexcept {
    return memo_.size();
  }

  /// Argmin action at the root state (call after/before solve(); values
  /// are memoized either way).
  std::vector<CellId> first_action() {
    const Mask remaining = c_ == 32 ? ~Mask{0} : (Mask{1} << c_) - 1;
    const Mask unfound = (Mask{1} << m_) - 1;
    Mask best_action;
    if (d_ <= 1) {
      best_action = forced_final_action(remaining, unfound,
                                        required_);
    } else {
      const Mask actionable = support(remaining, unfound);
      double best = std::numeric_limits<double>::infinity();
      best_action = actionable;
      for (Mask page = actionable; page != 0;
           page = (page - 1) & actionable) {
        const double value = action_value(remaining, unfound, d_, page);
        if (value < best) {
          best = value;
          best_action = page;
        }
      }
    }
    std::vector<CellId> cells;
    Mask bits = best_action;
    while (bits != 0) {
      cells.push_back(static_cast<CellId>(__builtin_ctz(bits)));
      bits &= bits - 1;
    }
    return cells;
  }

 private:
  /// P[device i lies in the cell set `cells`].
  double mass(std::size_t device, Mask cells) const {
    double total = 0.0;
    Mask bits = cells & support_of_device_[device];
    while (bits != 0) {
      const int j = __builtin_ctz(bits);
      bits &= bits - 1;
      total += instance_.prob(static_cast<DeviceId>(device),
                              static_cast<CellId>(j));
    }
    return total;
  }

  /// Union of the unfound devices' posterior supports within `remaining`.
  Mask support(Mask remaining, Mask unfound) const {
    Mask cells = 0;
    Mask devices = unfound;
    while (devices != 0) {
      const int i = __builtin_ctz(devices);
      devices &= devices - 1;
      cells |= support_of_device_[static_cast<std::size_t>(i)];
    }
    return cells & remaining;
  }

  /// Cheapest page set guaranteeing the objective with certainty: the
  /// minimum-cardinality union of posterior supports over subsets of
  /// `unfound` of size `needed` (for all-of, the full support).
  Mask forced_final_action(Mask remaining, Mask unfound,
                           std::size_t needed) const {
    std::vector<std::size_t> devices;
    Mask bits = unfound;
    while (bits != 0) {
      devices.push_back(static_cast<std::size_t>(__builtin_ctz(bits)));
      bits &= bits - 1;
    }
    if (needed >= devices.size()) return support(remaining, unfound);
    Mask best = support(remaining, unfound);
    int best_count = __builtin_popcount(best);
    // Enumerate device subsets of exactly `needed` members.
    const Mask device_full = (Mask{1} << devices.size()) - 1;
    for (Mask pick = 1; pick <= device_full; ++pick) {
      if (static_cast<std::size_t>(__builtin_popcount(pick)) != needed) {
        continue;
      }
      Mask cells = 0;
      Mask sel = pick;
      while (sel != 0) {
        const int idx = __builtin_ctz(sel);
        sel &= sel - 1;
        cells |= support_of_device_[devices[static_cast<std::size_t>(idx)]];
      }
      cells &= remaining;
      const int count = __builtin_popcount(cells);
      if (count < best_count) {
        best_count = count;
        best = cells;
      }
    }
    return best;
  }

  double value(Mask remaining, Mask unfound, std::size_t rounds_left) {
    const std::size_t found = m_ - static_cast<std::size_t>(
                                       __builtin_popcount(unfound));
    if (found >= required_) return 0.0;
    const std::size_t needed = required_ - found;

    const std::uint64_t key =
        (static_cast<std::uint64_t>(remaining) << 16) |
        (static_cast<std::uint64_t>(unfound) << 8) | rounds_left;
    const auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;

    double best;
    if (rounds_left <= 1) {
      best = static_cast<double>(
          __builtin_popcount(forced_final_action(remaining, unfound,
                                                 needed)));
    } else {
      best = std::numeric_limits<double>::infinity();
      const Mask actionable = support(remaining, unfound);
      // Enumerate nonempty subsets of the actionable support.
      for (Mask page = actionable; page != 0;
           page = (page - 1) & actionable) {
        best = std::min(best,
                        action_value(remaining, unfound, rounds_left, page));
      }
    }
    memo_.emplace(key, best);
    return best;
  }

  double action_value(Mask remaining, Mask unfound, std::size_t rounds_left,
                      Mask page) {
    // Per-unfound-device answer probability q_i = P_i(page)/P_i(remaining).
    std::vector<std::size_t> devices;
    std::vector<double> q;
    Mask bits = unfound;
    while (bits != 0) {
      const auto i = static_cast<std::size_t>(__builtin_ctz(bits));
      bits &= bits - 1;
      const double denom = mass(i, remaining);
      devices.push_back(i);
      q.push_back(denom > 0.0 ? mass(i, page) / denom : 0.0);
    }
    const Mask next_remaining = remaining & ~page;
    double expected = static_cast<double>(__builtin_popcount(page));
    // Enumerate found-subsets F of the unfound devices.
    const Mask outcomes = (Mask{1} << devices.size()) - 1;
    for (Mask f = 0; f <= outcomes; ++f) {
      double probability = 1.0;
      Mask next_unfound = unfound;
      for (std::size_t idx = 0; idx < devices.size(); ++idx) {
        if (f & (Mask{1} << idx)) {
          probability *= q[idx];
          next_unfound &= ~(Mask{1} << devices[idx]);
        } else {
          probability *= 1.0 - q[idx];
        }
      }
      if (probability <= 0.0) continue;
      expected += probability * value(next_remaining, next_unfound,
                                      rounds_left - 1);
    }
    return expected;
  }

  const Instance& instance_;
  std::size_t c_;
  std::size_t m_;
  std::size_t d_;
  std::size_t required_;
  std::vector<Mask> support_of_device_;
  std::unordered_map<std::uint64_t, double> memo_;
};

}  // namespace

OptimalAdaptiveResult solve_optimal_adaptive(const Instance& instance,
                                             std::size_t num_rounds,
                                             const Objective& objective,
                                             std::uint64_t work_limit) {
  const std::size_t c = instance.num_cells();
  const std::size_t m = instance.num_devices();
  if (num_rounds == 0 || num_rounds > c) {
    throw std::invalid_argument("solve_optimal_adaptive: need 1 <= d <= c");
  }
  if (c > 20 || m > 8) {
    throw std::invalid_argument(
        "solve_optimal_adaptive: instance too large (c <= 20, m <= 8)");
  }
  const std::size_t required = objective.required(m);
  const double work = std::pow(3.0, static_cast<double>(c)) *
                      std::pow(4.0, static_cast<double>(m)) *
                      static_cast<double>(num_rounds);
  if (work > static_cast<double>(work_limit)) {
    throw std::invalid_argument(
        "solve_optimal_adaptive: estimated work 3^c * 4^m * d exceeds the "
        "limit");
  }

  OptimalAdaptiveSolver solver(instance, num_rounds, required);
  OptimalAdaptiveResult result;
  result.expected_paging = solver.solve();
  result.states_evaluated = solver.states_evaluated();
  return result;
}

std::vector<CellId> optimal_adaptive_first_action(const Instance& instance,
                                                  std::size_t num_rounds,
                                                  const Objective& objective,
                                                  std::uint64_t work_limit) {
  // Reuse solve_optimal_adaptive's validation by running it first (the
  // memoization lives per solver instance, so build one and query it).
  const std::size_t c = instance.num_cells();
  const std::size_t m = instance.num_devices();
  if (num_rounds == 0 || num_rounds > c || c > 20 || m > 8) {
    throw std::invalid_argument(
        "optimal_adaptive_first_action: need 1 <= d <= c <= 20, m <= 8");
  }
  const double work = std::pow(3.0, static_cast<double>(c)) *
                      std::pow(4.0, static_cast<double>(m)) *
                      static_cast<double>(num_rounds);
  if (work > static_cast<double>(work_limit)) {
    throw std::invalid_argument(
        "optimal_adaptive_first_action: estimated work exceeds the limit");
  }
  OptimalAdaptiveSolver solver(instance, num_rounds,
                               objective.required(m));
  return solver.first_action();
}

}  // namespace confcall::core
