// Oblivious paging strategies (Section 1.2): an ordered partition of the
// cells into d non-empty groups; round r pages every cell of group r until
// the search objective is met.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "core/instance.h"

namespace confcall::core {

/// An oblivious paging strategy. Invariants (checked at construction):
/// the groups are non-empty and together partition {0, …, c-1} exactly.
class Strategy {
 public:
  /// Builds a strategy from explicit groups over `num_cells` cells.
  /// Throws std::invalid_argument when the groups are empty, contain
  /// duplicates/out-of-range cells, or do not cover every cell.
  static Strategy from_groups(std::vector<std::vector<CellId>> groups,
                              std::size_t num_cells);

  /// Builds a strategy that pages the cells of `order` split into
  /// consecutive chunks of the given `sizes` (the output format of the
  /// paper's Fig. 1 algorithm). `order` must be a permutation of
  /// {0,…,c-1} and the sizes must be positive and sum to c.
  static Strategy from_order_and_sizes(std::span<const CellId> order,
                                       std::span<const std::size_t> sizes);

  /// The one-round strategy paging every cell at once — the GSM MAP /
  /// IS-41 location-area behaviour the paper uses as its baseline.
  static Strategy blanket(std::size_t num_cells);

  /// Number of rounds d (= number of groups).
  [[nodiscard]] std::size_t num_rounds() const noexcept {
    return groups_.size();
  }

  /// Total number of cells covered.
  [[nodiscard]] std::size_t num_cells() const noexcept { return cells_; }

  /// Cells paged in round r (0-based).
  [[nodiscard]] const std::vector<CellId>& group(std::size_t round) const {
    return groups_.at(round);
  }

  [[nodiscard]] const std::vector<std::vector<CellId>>& groups()
      const noexcept {
    return groups_;
  }

  /// |S_1|, …, |S_d|.
  [[nodiscard]] std::vector<std::size_t> group_sizes() const;

  /// The round in which `cell` is paged (0-based). O(1).
  [[nodiscard]] std::size_t round_of(CellId cell) const {
    return round_of_.at(cell);
  }

  /// Cumulative number of cells paged through round r inclusive
  /// (|S_1| + … + |S_{r+1}| in paper terms).
  [[nodiscard]] std::size_t cells_paged_through(std::size_t round) const;

  /// "{a,b}|{c}|{d,e}" — rounds separated by '|'.
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Strategy& lhs, const Strategy& rhs) = default;

 private:
  Strategy(std::vector<std::vector<CellId>> groups, std::size_t cells,
           std::vector<std::size_t> round_of)
      : groups_(std::move(groups)),
        cells_(cells),
        round_of_(std::move(round_of)) {}

  std::vector<std::vector<CellId>> groups_;
  std::size_t cells_ = 0;
  std::vector<std::size_t> round_of_;
};

}  // namespace confcall::core
