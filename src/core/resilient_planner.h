// Degraded-mode planning: a fallback chain of planners.
//
// Planners fail in practice: the typed exact solver rejects instances
// whose node count exceeds its limit, a capped planner rejects infeasible
// budgets, and a deadline-bound deployment cannot wait for a slow tier.
// A ResilientPlanner wraps an ordered chain (preferred tier first,
// cheapest last) and guarantees an answer: each tier is tried in turn,
// std::invalid_argument / std::runtime_error failures and wall-clock
// budget overruns degrade to the next tier, and the tier that finally
// served each call is counted so deployments can watch their degradation
// rate. The last tier is the safety net — it runs even when the budget
// is already blown (a blanket plan is instant and always valid).
//
// Each non-final tier additionally sits behind a support::CircuitBreaker:
// a tier that keeps failing (or keeps answering too late) is skipped
// outright — BEFORE burning budget on it — until its cooldown elapses and
// a half-open probe lets it earn its place back. Breakers read time from
// the injected ClockSource, so breaker behaviour is deterministic under a
// ManualClock (the E14 bench and the soak harness rely on this).
//
// plan() is const like every Planner, but telemetry and breaker state
// mutate under it; all of that is atomic or internally locked, so one
// ResilientPlanner may be shared across threads (the plan cache shares
// planners across parallel simulation replications).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/planner.h"
#include "support/metrics.h"
#include "support/overload.h"

namespace confcall::core {

/// A planner that degrades through a fallback chain instead of failing.
class ResilientPlanner final : public Planner {
 public:
  struct Budget {
    /// Wall-clock limit per plan() call, in seconds. When a tier leaves
    /// less than nothing on the clock, remaining non-final tiers are
    /// skipped (their result would arrive after the call-setup deadline)
    /// and the final tier serves. 0 = unlimited.
    double time_limit_seconds = 0.0;
  };

  /// Takes ownership of the chain (preferred first). Breakers guard
  /// every non-final tier and read `clock` (which must outlive the
  /// planner). Telemetry (per-tier served counts, failovers, breaker
  /// skips/trips, plan latency) lives in a support::MetricRegistry: pass
  /// one to share a registry with other components (it must outlive the
  /// planner), or pass nullptr and the planner owns a private registry —
  /// the telemetry getters below work either way. Throws
  /// std::invalid_argument on an empty chain, a null entry, a negative
  /// time limit, or bad breaker options.
  explicit ResilientPlanner(
      std::vector<std::unique_ptr<Planner>> chain, Budget budget = Budget{0.0},
      const support::ClockSource& clock = support::SteadyClockSource::shared(),
      support::CircuitBreakerOptions breaker_options = {},
      support::MetricRegistry* registry = nullptr);

  /// The standard production chain: typed-exact -> greedy Fig. 1 ->
  /// blanket. `registry` as in the constructor (nullptr = private).
  static std::unique_ptr<ResilientPlanner> standard(
      Budget budget = Budget{0.0},
      support::MetricRegistry* registry = nullptr);

  /// "resilient(exact-typed>greedy-fig1>blanket)".
  [[nodiscard]] std::string name() const override;

  /// Tries each tier in order; returns the first strategy produced in
  /// budget. Only if every tier fails (possible when even the last tier
  /// rejects the instance) does the last tier's error propagate.
  [[nodiscard]] Strategy plan(const Instance& instance,
                              std::size_t num_rounds) const override;

  /// Deadline-aware planning: like plan(), but non-final tiers are
  /// skipped once `deadline` (read against this planner's clock) has
  /// expired — the propagated call-setup deadline replaces the per-call
  /// seconds budget. The final tier still always runs.
  [[nodiscard]] Strategy plan(const Instance& instance,
                              std::size_t num_rounds,
                              support::Deadline deadline) const;

  /// How many plan() calls each tier served (index-aligned snapshot).
  /// Thin adapter over the registry counters, kept for existing callers;
  /// new code should read metrics_snapshot() for one consistent cut.
  [[nodiscard]] std::vector<std::uint64_t> served_counts() const;

  /// Tier index that served the most recent successful plan().
  [[nodiscard]] std::size_t last_tier() const noexcept {
    return last_tier_.load(std::memory_order_relaxed);
  }

  /// Total tier failures/skips across all plan() calls (a measure of how
  /// often the deployment is degraded).
  [[nodiscard]] std::uint64_t failovers() const noexcept {
    return failovers_metric_.value();
  }

  /// Tier attempts refused by an open breaker (a subset of failovers()).
  [[nodiscard]] std::uint64_t breaker_skips() const noexcept {
    return breaker_skips_metric_.value();
  }

  /// One consistent cut of the planner's telemetry registry
  /// (confcall_planner_* series; the whole shared registry when one was
  /// injected). Reporting paths should print from a single snapshot
  /// instead of stitching together racing getter calls.
  [[nodiscard]] support::RegistrySnapshot metrics_snapshot() const {
    return registry_->snapshot();
  }

  /// Breaker trips summed across all non-final tiers.
  [[nodiscard]] std::uint64_t breaker_trips() const;

  /// The breaker guarding non-final tier `index` (for telemetry).
  [[nodiscard]] const support::CircuitBreaker& breaker(
      std::size_t index) const {
    return *breakers_.at(index);
  }

  /// Mutable access to the same breaker, for an actuator that tunes it
  /// (the SLO controller's cooldown loop).
  [[nodiscard]] support::CircuitBreaker& mutable_breaker(std::size_t index) {
    return *breakers_.at(index);
  }

  [[nodiscard]] std::size_t num_tiers() const noexcept {
    return chain_.size();
  }

  /// The tier planners, for inspection (e.g. their names).
  [[nodiscard]] const Planner& tier(std::size_t index) const {
    return *chain_.at(index);
  }

 private:
  [[nodiscard]] Strategy plan_impl(const Instance& instance,
                                   std::size_t num_rounds,
                                   support::Deadline deadline) const;

  std::vector<std::unique_ptr<Planner>> chain_;
  Budget budget_;
  const support::ClockSource* clock_;
  /// One breaker per non-final tier (the safety-net tier is never
  /// broken: returning SOMETHING is its whole job).
  mutable std::vector<std::unique_ptr<support::CircuitBreaker>> breakers_;
  mutable std::atomic<std::size_t> last_tier_{0};
  /// Private fallback registry when no shared one is injected; registry_
  /// points at whichever holds the confcall_planner_* series.
  std::unique_ptr<support::MetricRegistry> owned_registry_;
  support::MetricRegistry* registry_ = nullptr;
  std::vector<support::Counter> served_metric_;  // per tier, {tier=i}
  support::Counter failovers_metric_;
  support::Counter breaker_skips_metric_;
  support::Histogram plan_latency_metric_;
};

}  // namespace confcall::core
