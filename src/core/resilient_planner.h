// Degraded-mode planning: a fallback chain of planners.
//
// Planners fail in practice: the typed exact solver rejects instances
// whose node count exceeds its limit, a capped planner rejects infeasible
// budgets, and a deadline-bound deployment cannot wait for a slow tier.
// A ResilientPlanner wraps an ordered chain (preferred tier first,
// cheapest last) and guarantees an answer: each tier is tried in turn,
// std::invalid_argument / std::runtime_error failures and wall-clock
// budget overruns degrade to the next tier, and the tier that finally
// served each call is counted so deployments can watch their degradation
// rate. The last tier is the safety net — it runs even when the budget
// is already blown (a blanket plan is instant and always valid).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/planner.h"

namespace confcall::core {

/// A planner that degrades through a fallback chain instead of failing.
/// plan() is const like every Planner, but the telemetry counters mutate
/// under it — the class is not thread-safe.
class ResilientPlanner final : public Planner {
 public:
  struct Budget {
    /// Wall-clock limit per plan() call, in seconds. When a tier leaves
    /// less than nothing on the clock, remaining non-final tiers are
    /// skipped (their result would arrive after the call-setup deadline)
    /// and the final tier serves. 0 = unlimited.
    double time_limit_seconds = 0.0;
  };

  /// Takes ownership of the chain (preferred first). Throws
  /// std::invalid_argument on an empty chain, a null entry, or a
  /// negative time limit.
  explicit ResilientPlanner(std::vector<std::unique_ptr<Planner>> chain,
                            Budget budget = Budget{0.0});

  /// The standard production chain: typed-exact -> greedy Fig. 1 ->
  /// blanket.
  static std::unique_ptr<ResilientPlanner> standard(Budget budget = Budget{0.0});

  /// "resilient(exact-typed>greedy-fig1>blanket)".
  [[nodiscard]] std::string name() const override;

  /// Tries each tier in order; returns the first strategy produced in
  /// budget. Only if every tier fails (possible when even the last tier
  /// rejects the instance) does the last tier's error propagate.
  [[nodiscard]] Strategy plan(const Instance& instance,
                              std::size_t num_rounds) const override;

  /// How many plan() calls each tier served (index-aligned with the
  /// chain).
  [[nodiscard]] std::span<const std::uint64_t> served_counts() const {
    return served_;
  }

  /// Tier index that served the most recent successful plan().
  [[nodiscard]] std::size_t last_tier() const noexcept { return last_tier_; }

  /// Total tier failures/skips across all plan() calls (a measure of how
  /// often the deployment is degraded).
  [[nodiscard]] std::uint64_t failovers() const noexcept {
    return failovers_;
  }

  [[nodiscard]] std::size_t num_tiers() const noexcept {
    return chain_.size();
  }

  /// The tier planners, for inspection (e.g. their names).
  [[nodiscard]] const Planner& tier(std::size_t index) const {
    return *chain_.at(index);
  }

 private:
  std::vector<std::unique_ptr<Planner>> chain_;
  Budget budget_;
  mutable std::vector<std::uint64_t> served_;
  mutable std::size_t last_tier_ = 0;
  mutable std::uint64_t failovers_ = 0;
};

}  // namespace confcall::core
