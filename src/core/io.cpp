#include "core/io.h"

#include <charconv>
#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace confcall::core {

namespace {

/// Strips '#' comments and splits the remainder into whitespace-separated
/// tokens.
std::vector<std::string> tokenize(std::string_view text) {
  std::vector<std::string> tokens;
  std::string current;
  bool in_comment = false;
  for (const char ch : text) {
    if (ch == '\n') {
      in_comment = false;
    } else if (ch == '#') {
      in_comment = true;
    }
    if (in_comment || ch == ' ' || ch == '\t' || ch == '\n' || ch == '\r') {
      if (!current.empty()) {
        tokens.push_back(std::move(current));
        current.clear();
      }
      continue;
    }
    current.push_back(ch);
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

double parse_double(const std::string& token) {
  double value = 0.0;
  const auto* begin = token.data();
  const auto* end = begin + token.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end) {
    throw std::invalid_argument("instance_from_text: bad number '" + token +
                                "'");
  }
  return value;
}

std::size_t parse_size(const std::string& token, const char* what) {
  std::size_t value = 0;
  const auto* begin = token.data();
  const auto* end = begin + token.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end) {
    throw std::invalid_argument(std::string("instance_from_text: bad ") +
                                what + " '" + token + "'");
  }
  return value;
}

}  // namespace

std::string instance_to_text(const Instance& instance) {
  std::ostringstream os;
  os << "conference-call-instance v1\n";
  os << "m " << instance.num_devices() << "\n";
  os << "c " << instance.num_cells() << "\n";
  char buffer[64];
  for (std::size_t i = 0; i < instance.num_devices(); ++i) {
    for (std::size_t j = 0; j < instance.num_cells(); ++j) {
      std::snprintf(buffer, sizeof(buffer), "%.17g",
                    instance.prob(static_cast<DeviceId>(i),
                                  static_cast<CellId>(j)));
      os << (j == 0 ? "" : " ") << buffer;
    }
    os << "\n";
  }
  return os.str();
}

Instance instance_from_text(std::string_view text) {
  const std::vector<std::string> tokens = tokenize(text);
  // Header: "conference-call-instance v1 m <m> c <c>".
  if (tokens.size() < 6 || tokens[0] != "conference-call-instance" ||
      tokens[1] != "v1" || tokens[2] != "m" || tokens[4] != "c") {
    throw std::invalid_argument("instance_from_text: bad header");
  }
  const std::size_t m = parse_size(tokens[3], "device count");
  const std::size_t c = parse_size(tokens[5], "cell count");
  const std::size_t expected = 6 + m * c;
  if (tokens.size() != expected) {
    throw std::invalid_argument(
        "instance_from_text: expected " + std::to_string(m * c) +
        " probabilities, found " + std::to_string(tokens.size() - 6));
  }
  std::vector<double> flat;
  flat.reserve(m * c);
  for (std::size_t k = 6; k < tokens.size(); ++k) {
    flat.push_back(parse_double(tokens[k]));
  }
  return Instance(m, c, std::move(flat));
}

Strategy strategy_from_text(std::string_view text, std::size_t num_cells) {
  std::vector<std::vector<CellId>> groups;
  std::vector<CellId> current_group;
  std::string current_number;
  bool inside_braces = false;

  const auto flush_number = [&] {
    if (current_number.empty()) return;
    CellId cell = 0;
    const auto* begin = current_number.data();
    const auto* end = begin + current_number.size();
    const auto [ptr, ec] = std::from_chars(begin, end, cell);
    if (ec != std::errc() || ptr != end) {
      throw std::invalid_argument("strategy_from_text: bad cell id '" +
                                  current_number + "'");
    }
    current_group.push_back(cell);
    current_number.clear();
  };

  for (const char ch : text) {
    switch (ch) {
      case '{':
        if (inside_braces) {
          throw std::invalid_argument("strategy_from_text: nested '{'");
        }
        inside_braces = true;
        break;
      case '}':
        if (!inside_braces) {
          throw std::invalid_argument("strategy_from_text: stray '}'");
        }
        flush_number();
        groups.push_back(std::move(current_group));
        current_group.clear();
        inside_braces = false;
        break;
      case ',':
        if (!inside_braces) {
          throw std::invalid_argument("strategy_from_text: ',' outside group");
        }
        flush_number();
        break;
      case '|':
        if (inside_braces) {
          throw std::invalid_argument("strategy_from_text: '|' inside group");
        }
        break;
      case ' ':
      case '\t':
      case '\n':
      case '\r':
        flush_number();
        break;
      default:
        if (ch < '0' || ch > '9') {
          throw std::invalid_argument(
              std::string("strategy_from_text: unexpected character '") + ch +
              "'");
        }
        if (!inside_braces) {
          throw std::invalid_argument(
              "strategy_from_text: digits outside a group");
        }
        current_number.push_back(ch);
        break;
    }
  }
  if (inside_braces) {
    throw std::invalid_argument("strategy_from_text: unterminated group");
  }
  return Strategy::from_groups(std::move(groups), num_cells);
}

}  // namespace confcall::core
