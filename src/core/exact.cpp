#include "core/exact.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/evaluator.h"
#include "core/greedy.h"

namespace confcall::core {

namespace {

std::vector<CellId> cells_of_mask(std::uint32_t mask, std::size_t c) {
  std::vector<CellId> cells;
  for (std::size_t j = 0; j < c; ++j) {
    if (mask & (1U << j)) cells.push_back(static_cast<CellId>(j));
  }
  return cells;
}

}  // namespace

ExactResult solve_exact_d2(const Instance& instance,
                           const Objective& objective,
                           std::size_t max_cells_guard) {
  const std::size_t c = instance.num_cells();
  const std::size_t m = instance.num_devices();
  if (c < 2) {
    throw std::invalid_argument("solve_exact_d2: need at least 2 cells");
  }
  if (c > max_cells_guard || c >= 31) {
    throw std::invalid_argument("solve_exact_d2: too many cells (" +
                                std::to_string(c) + ") for 2^c enumeration");
  }
  (void)objective.required(m);

  // Gray-code enumeration: consecutive subsets differ in exactly one
  // cell, so per-device masses update incrementally in O(m) with O(m)
  // memory (a dense 2^c mass table would cost m * 2^c doubles — hundreds
  // of MB at the guard limit).
  const std::uint32_t full = (1U << c) - 1;
  double best_ep = std::numeric_limits<double>::infinity();
  std::uint32_t best_mask = 1;
  std::uint64_t nodes = 0;
  std::vector<double> mass(m, 0.0);
  std::vector<double> prefix(m);
  std::uint32_t gray = 0;
  for (std::uint32_t k = 1; k <= full; ++k) {
    const std::uint32_t next_gray = k ^ (k >> 1);
    const std::uint32_t flipped = gray ^ next_gray;  // single bit
    const auto bit = static_cast<CellId>(__builtin_ctz(flipped));
    const bool added = (next_gray & flipped) != 0;
    for (std::size_t i = 0; i < m; ++i) {
      const double p = instance.prob(static_cast<DeviceId>(i), bit);
      mass[i] += added ? p : -p;
    }
    gray = next_gray;
    if (gray == full) continue;  // proper subsets only
    ++nodes;
    for (std::size_t i = 0; i < m; ++i) {
      // Clamp tiny drift from the incremental +/- updates.
      prefix[i] = std::clamp(mass[i], 0.0, 1.0);
    }
    const double stop = objective.stop_probability(prefix);
    const auto s1 = static_cast<double>(__builtin_popcount(gray));
    const double ep =
        static_cast<double>(c) - (static_cast<double>(c) - s1) * stop;
    if (ep < best_ep) {
      best_ep = ep;
      best_mask = gray;
    }
  }

  ExactResult result{
      .strategy = Strategy::from_groups(
          {cells_of_mask(best_mask, c), cells_of_mask(~best_mask & full, c)},
          c),
      .expected_paging = best_ep,
      .nodes_explored = nodes,
  };
  return result;
}

namespace {

/// Shared state for the exhaustive / branch-and-bound ordered-partition
/// search. Cells are assigned in index order; `sizes` and `round_mass`
/// track the partial strategy.
struct PartitionSearch {
  const Instance& instance;
  const Objective& objective;
  std::size_t d;
  bool use_bound;

  std::vector<std::size_t> assignment;        // cell -> round
  std::vector<std::size_t> sizes;             // per-round cell count
  std::vector<std::vector<double>> round_mass;  // [round][device]
  std::vector<double> unassigned_mass;        // per device
  double best_ep = std::numeric_limits<double>::infinity();
  std::vector<std::size_t> best_assignment;
  std::uint64_t nodes = 0;

  PartitionSearch(const Instance& inst, const Objective& obj, std::size_t dd,
                  bool bound)
      : instance(inst),
        objective(obj),
        d(dd),
        use_bound(bound),
        assignment(inst.num_cells(), 0),
        sizes(dd, 0),
        round_mass(dd, std::vector<double>(inst.num_devices(), 0.0)),
        unassigned_mass(inst.num_devices(), 1.0) {}

  /// EP of a fully assigned partition, via Lemma 2.1 on cumulative masses.
  double leaf_ep() {
    const std::size_t m = instance.num_devices();
    std::vector<double> prefix(m, 0.0);
    double ep = static_cast<double>(instance.num_cells());
    for (std::size_t r = 0; r + 1 < d; ++r) {
      for (std::size_t i = 0; i < m; ++i) {
        prefix[i] = std::min(1.0, prefix[i] + round_mass[r][i]);
      }
      ep -= static_cast<double>(sizes[r + 1]) *
            objective.stop_probability(prefix);
    }
    return ep;
  }

  /// Admissible lower bound on the EP of any completion: give every prefix
  /// all the unassigned probability mass and put all unassigned cells in
  /// the single most favourable group.
  double optimistic_bound(std::size_t unassigned_cells) {
    const std::size_t m = instance.num_devices();
    std::vector<double> prefix(m, 0.0);
    double sum = 0.0;
    double best_stop = 0.0;
    for (std::size_t r = 0; r + 1 < d; ++r) {
      double stop;
      {
        std::vector<double> optimistic(m);
        for (std::size_t i = 0; i < m; ++i) {
          prefix[i] += round_mass[r][i];
          optimistic[i] = std::min(1.0, prefix[i] + unassigned_mass[i]);
        }
        stop = objective.stop_probability(optimistic);
      }
      sum += static_cast<double>(sizes[r + 1]) * stop;
      best_stop = std::max(best_stop, stop);
    }
    sum += static_cast<double>(unassigned_cells) * best_stop;
    return static_cast<double>(instance.num_cells()) - sum;
  }

  void search(std::size_t cell) {
    ++nodes;
    const std::size_t c = instance.num_cells();
    if (cell == c) {
      // Reject partitions with an empty round.
      for (const std::size_t s : sizes) {
        if (s == 0) return;
      }
      const double ep = leaf_ep();
      if (ep < best_ep) {
        best_ep = ep;
        best_assignment = assignment;
      }
      return;
    }
    // Prune: not enough cells left to fill the still-empty rounds.
    std::size_t empty_rounds = 0;
    for (const std::size_t s : sizes) {
      if (s == 0) ++empty_rounds;
    }
    if (empty_rounds > c - cell) return;
    if (use_bound && optimistic_bound(c - cell) >= best_ep) return;

    const std::size_t m = instance.num_devices();
    for (std::size_t r = 0; r < d; ++r) {
      assignment[cell] = r;
      ++sizes[r];
      for (std::size_t i = 0; i < m; ++i) {
        const double p = instance.prob(static_cast<DeviceId>(i),
                                       static_cast<CellId>(cell));
        round_mass[r][i] += p;
        unassigned_mass[i] -= p;
      }
      search(cell + 1);
      for (std::size_t i = 0; i < m; ++i) {
        const double p = instance.prob(static_cast<DeviceId>(i),
                                       static_cast<CellId>(cell));
        round_mass[r][i] -= p;
        unassigned_mass[i] += p;
      }
      --sizes[r];
    }
  }

  ExactResult result() const {
    const std::size_t c = instance.num_cells();
    std::vector<std::vector<CellId>> groups(d);
    for (std::size_t cell = 0; cell < c; ++cell) {
      groups[best_assignment[cell]].push_back(static_cast<CellId>(cell));
    }
    return ExactResult{
        .strategy = Strategy::from_groups(std::move(groups), c),
        .expected_paging = best_ep,
        .nodes_explored = nodes,
    };
  }
};

}  // namespace

ExactResult solve_exact(const Instance& instance, std::size_t num_rounds,
                        const Objective& objective, std::uint64_t node_limit) {
  const std::size_t c = instance.num_cells();
  if (num_rounds == 0 || num_rounds > c) {
    throw std::invalid_argument("solve_exact: need 1 <= d <= c");
  }
  // Estimated tree size: sum of d^k over levels ~ d^c * d/(d-1).
  double leaves = std::pow(static_cast<double>(num_rounds),
                           static_cast<double>(c));
  if (leaves > static_cast<double>(node_limit)) {
    throw std::invalid_argument(
        "solve_exact: d^c exceeds the node limit; use "
        "solve_branch_and_bound or a smaller instance");
  }
  (void)objective.required(instance.num_devices());
  PartitionSearch search(instance, objective, num_rounds, /*bound=*/false);
  search.search(0);
  return search.result();
}

ExactResult solve_branch_and_bound(const Instance& instance,
                                   std::size_t num_rounds,
                                   const Objective& objective) {
  const std::size_t c = instance.num_cells();
  if (num_rounds == 0 || num_rounds > c) {
    throw std::invalid_argument("solve_branch_and_bound: need 1 <= d <= c");
  }
  (void)objective.required(instance.num_devices());
  PartitionSearch search(instance, objective, num_rounds, /*bound=*/true);
  // Seed the incumbent with the Fig. 1 solution so pruning bites from the
  // first node; if no strictly better partition exists the greedy
  // assignment is returned (it is then optimal).
  const PlanResult greedy = plan_greedy(instance, num_rounds, objective);
  search.best_ep = greedy.expected_paging;
  search.best_assignment.resize(c);
  for (std::size_t cell = 0; cell < c; ++cell) {
    search.best_assignment[cell] =
        greedy.strategy.round_of(static_cast<CellId>(cell));
  }
  search.search(0);
  return search.result();
}

ColumnTypes column_types(const Instance& instance) {
  const std::size_t c = instance.num_cells();
  const std::size_t m = instance.num_devices();
  ColumnTypes types;
  types.type_of.assign(c, 0);
  for (std::size_t j = 0; j < c; ++j) {
    bool matched = false;
    for (std::size_t t = 0; t < types.representative.size(); ++t) {
      const CellId rep = types.representative[t];
      bool equal = true;
      for (std::size_t i = 0; i < m; ++i) {
        if (instance.prob(static_cast<DeviceId>(i),
                          static_cast<CellId>(j)) !=
            instance.prob(static_cast<DeviceId>(i), rep)) {
          equal = false;
          break;
        }
      }
      if (equal) {
        types.type_of[j] = t;
        ++types.count[t];
        matched = true;
        break;
      }
    }
    if (!matched) {
      types.type_of[j] = types.representative.size();
      types.representative.push_back(static_cast<CellId>(j));
      types.count.push_back(1);
    }
  }
  return types;
}

namespace {

std::uint64_t compositions(std::uint64_t n, std::uint64_t parts) {
  // C(n + parts - 1, parts - 1), saturating at uint64 max.
  std::uint64_t result = 1;
  for (std::uint64_t k = 1; k < parts; ++k) {
    const std::uint64_t numerator = n + k;
    if (result > UINT64_MAX / numerator) return UINT64_MAX;
    result = result * numerator / k;
  }
  return result;
}

/// DFS over per-type round compositions; see solve_exact_typed docs.
struct TypedSearch {
  const Instance& instance;
  const Objective& objective;
  const ColumnTypes& types;
  std::size_t d;

  // alloc[t][r]: cells of type t paged in round r (current branch).
  std::vector<std::vector<std::size_t>> alloc;
  std::vector<std::size_t> round_size;
  double best_ep = std::numeric_limits<double>::infinity();
  std::vector<std::vector<std::size_t>> best_alloc;
  std::uint64_t nodes = 0;

  TypedSearch(const Instance& inst, const Objective& obj,
              const ColumnTypes& tps, std::size_t dd)
      : instance(inst),
        objective(obj),
        types(tps),
        d(dd),
        alloc(tps.count.size(), std::vector<std::size_t>(dd, 0)),
        round_size(dd, 0) {}

  double leaf_ep() {
    const std::size_t m = instance.num_devices();
    const std::size_t T = types.count.size();
    std::vector<double> prefix(m, 0.0);
    double ep = static_cast<double>(instance.num_cells());
    for (std::size_t r = 0; r + 1 < d; ++r) {
      for (std::size_t t = 0; t < T; ++t) {
        const double cells = static_cast<double>(alloc[t][r]);
        if (cells == 0.0) continue;
        for (std::size_t i = 0; i < m; ++i) {
          prefix[i] += cells * instance.prob(static_cast<DeviceId>(i),
                                             types.representative[t]);
        }
      }
      std::vector<double> clamped(prefix);
      for (double& q : clamped) q = std::min(q, 1.0);
      ep -= static_cast<double>(round_size[r + 1]) *
            objective.stop_probability(clamped);
    }
    return ep;
  }

  // Enumerate compositions of types.count[t] over the d rounds, one type
  // at a time; within a type, one round at a time.
  void search(std::size_t t, std::size_t r, std::size_t remaining) {
    ++nodes;
    const std::size_t T = types.count.size();
    if (t == T) {
      for (const std::size_t s : round_size) {
        if (s == 0) return;  // every round must page something
      }
      const double ep = leaf_ep();
      if (ep < best_ep) {
        best_ep = ep;
        best_alloc = alloc;
      }
      return;
    }
    if (r + 1 == d) {
      alloc[t][r] = remaining;
      round_size[r] += remaining;
      search(t + 1, 0, t + 1 < T ? types.count[t + 1] : 0);
      round_size[r] -= remaining;
      alloc[t][r] = 0;
      return;
    }
    for (std::size_t take = 0; take <= remaining; ++take) {
      alloc[t][r] = take;
      round_size[r] += take;
      search(t, r + 1, remaining - take);
      round_size[r] -= take;
      alloc[t][r] = 0;
    }
  }

  ExactResult result() const {
    const std::size_t c = instance.num_cells();
    // Materialize groups: hand the cells of each type out round by round
    // in cell-index order.
    std::vector<std::vector<std::size_t>> remaining_alloc = best_alloc;
    std::vector<std::vector<CellId>> groups(d);
    for (std::size_t j = 0; j < c; ++j) {
      const std::size_t t = types.type_of[j];
      for (std::size_t r = 0; r < d; ++r) {
        if (remaining_alloc[t][r] > 0) {
          --remaining_alloc[t][r];
          groups[r].push_back(static_cast<CellId>(j));
          break;
        }
      }
    }
    return ExactResult{
        .strategy = Strategy::from_groups(std::move(groups), c),
        .expected_paging = best_ep,
        .nodes_explored = nodes,
    };
  }
};

}  // namespace

ExactResult solve_exact_typed(const Instance& instance,
                              std::size_t num_rounds,
                              const Objective& objective,
                              std::uint64_t node_limit) {
  const std::size_t c = instance.num_cells();
  if (num_rounds == 0 || num_rounds > c) {
    throw std::invalid_argument("solve_exact_typed: need 1 <= d <= c");
  }
  (void)objective.required(instance.num_devices());
  const ColumnTypes types = column_types(instance);
  std::uint64_t leaves = 1;
  for (const std::size_t n : types.count) {
    const std::uint64_t per_type = compositions(n, num_rounds);
    if (per_type == UINT64_MAX || leaves > node_limit / per_type) {
      throw std::invalid_argument(
          "solve_exact_typed: composition count exceeds the node limit "
          "(too many distinct column types for this size)");
    }
    leaves *= per_type;
  }
  TypedSearch search(instance, objective, types, num_rounds);
  search.search(0, 0, types.count[0]);
  if (search.best_alloc.empty()) {
    throw std::logic_error("solve_exact_typed: no feasible plan (bug)");
  }
  return search.result();
}

ExactRationalD2Result solve_exact_d2_exact(const RationalInstance& instance,
                                           std::size_t max_cells_guard) {
  const std::size_t c = instance.num_cells();
  const std::size_t m = instance.num_devices();
  if (c < 2) {
    throw std::invalid_argument("solve_exact_d2_exact: need >= 2 cells");
  }
  if (c > max_cells_guard || c >= 26) {
    throw std::invalid_argument(
        "solve_exact_d2_exact: too many cells for exact enumeration");
  }
  const std::uint32_t full = (1U << c) - 1;
  const prob::Rational c_rational(static_cast<std::int64_t>(c));

  prob::Rational best_ep;
  bool have_best = false;
  std::uint32_t best_mask = 1;
  // Gray-code enumeration with incremental exact masses (rational
  // addition/subtraction is exact, so no drift) — O(m) memory.
  std::vector<prob::Rational> mass(m);
  std::uint32_t gray = 0;
  for (std::uint32_t k = 1; k <= full; ++k) {
    const std::uint32_t next_gray = k ^ (k >> 1);
    const std::uint32_t flipped = gray ^ next_gray;
    const auto bit = static_cast<CellId>(__builtin_ctz(flipped));
    const bool added = (next_gray & flipped) != 0;
    for (std::size_t i = 0; i < m; ++i) {
      const auto& p = instance.prob(static_cast<DeviceId>(i), bit);
      if (added) {
        mass[i] += p;
      } else {
        mass[i] -= p;
      }
    }
    gray = next_gray;
    if (gray == full) continue;  // proper subsets only
    prob::Rational product(1);
    for (std::size_t i = 0; i < m; ++i) product *= mass[i];
    const auto s2 =
        static_cast<std::int64_t>(c) - __builtin_popcount(gray);
    const prob::Rational ep =
        c_rational - prob::Rational(s2) * product;
    if (!have_best || ep < best_ep) {
      best_ep = ep;
      best_mask = gray;
      have_best = true;
    }
  }
  return ExactRationalD2Result{
      .first_round = cells_of_mask(best_mask, c),
      .expected_paging = best_ep,
  };
}

}  // namespace confcall::core
