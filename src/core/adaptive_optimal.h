// Exact OPTIMAL adaptive paging policies (the paper's Section 5 open
// problem, answered computationally for small instances).
//
// An adaptive policy chooses each round's page set from everything
// observed so far. Because the only observation is "device i answered in
// cell j / did not answer", the posterior of every unfound device is just
// its prior conditioned on the still-unpaged cells — so the information
// state collapses to (unpaged-cell set R, unfound-device set U,
// rounds left). This module value-iterates that state space exactly:
//
//   V(R, U, rl) = 0                                  if objective met
//   V(R, U, 1)  = |forced final page set|            (certainty move)
//   V(R, U, rl) = min over nonempty S subseteq supp  |S| +
//                 sum_{F subseteq U} Pr[F found] V(R\S, U\F, rl-1)
//
// with q_i = P_i(S)/P_i(R) the chance device i in U answers, and actions
// pruned to the posterior support (paging a cell no unfound device can
// occupy is dominated). The final round is forced: for the all-of
// objective it pages the whole support; for k-of-m it pages the cheapest
// union of supports of (k - found) unfound devices, which guarantees the
// objective with certainty.
//
// Cost is O(3^c * 4^m * d) states x transitions — exponential, matching
// the paper's observation that even the complexity of optimal adaptive
// search is unresolved. Intended for ground-truth comparisons (bench A4):
// the adaptivity gap (oblivious OPT / adaptive OPT) and the quality of the
// Section 5 re-planning heuristic against the true adaptive optimum.
//
// Note one semantic nuance: an adaptive policy never needs to page cells
// outside the posterior support, so on instances with zero-probability
// cells its cost can beat every oblivious strategy's d = 1 blanket bound.
#pragma once

#include <cstdint>

#include "core/instance.h"
#include "core/objective.h"

namespace confcall::core {

/// Result of the optimal-adaptive value iteration.
struct OptimalAdaptiveResult {
  /// Minimal expected number of cells paged by ANY adaptive policy using
  /// at most d rounds.
  double expected_paging = 0.0;
  /// Memoized states actually evaluated (diagnostics for bench A4).
  std::uint64_t states_evaluated = 0;
};

/// Computes the optimal adaptive expected paging. Requirements:
/// 1 <= d <= c, c <= 20, m <= 8, and the estimated work 3^c * 4^m * d must
/// not exceed `work_limit` (throws std::invalid_argument otherwise).
OptimalAdaptiveResult solve_optimal_adaptive(
    const Instance& instance, std::size_t num_rounds,
    const Objective& objective = Objective::all_of(),
    std::uint64_t work_limit = 400'000'000);

/// The optimal adaptive policy's FIRST page set (cells, ascending) — what
/// an optimal controller would broadcast in round 1. Useful for comparing
/// against Fig. 1's first group (they coincide at d = 2 where adaptive ==
/// oblivious optimal, and may diverge at d >= 3). Same requirements as
/// solve_optimal_adaptive.
std::vector<CellId> optimal_adaptive_first_action(
    const Instance& instance, std::size_t num_rounds,
    const Objective& objective = Objective::all_of(),
    std::uint64_t work_limit = 400'000'000);

}  // namespace confcall::core
