#include "core/greedy.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "core/evaluator.h"

namespace confcall::core {

std::vector<CellId> greedy_cell_order(const Instance& instance) {
  const std::vector<double> weights = instance.cell_weights();
  std::vector<CellId> order(instance.num_cells());
  std::iota(order.begin(), order.end(), CellId{0});
  std::stable_sort(order.begin(), order.end(),
                   [&weights](CellId a, CellId b) {
                     return weights[a] > weights[b];
                   });
  return order;
}

std::vector<double> stop_by_prefix(const Instance& instance,
                                   std::span<const CellId> order,
                                   const Objective& objective) {
  const std::size_t m = instance.num_devices();
  const std::size_t c = instance.num_cells();
  if (order.size() != c) {
    throw std::invalid_argument("stop_by_prefix: order length != cells");
  }
  std::vector<double> prefix(m, 0.0);
  std::vector<double> stop(c + 1, 0.0);
  stop[0] = objective.stop_probability(prefix);  // 0 for every objective
  for (std::size_t j = 0; j < c; ++j) {
    const CellId cell = order[j];
    for (std::size_t i = 0; i < m; ++i) {
      prefix[i] += instance.prob(static_cast<DeviceId>(i), cell);
    }
    for (double& q : prefix) q = std::min(q, 1.0);
    stop[j + 1] = objective.stop_probability(prefix);
  }
  stop[c] = 1.0;  // all cells paged: the objective is certainly met
  return stop;
}

PlanResult plan_dp_over_order(const Instance& instance,
                              std::vector<CellId> order,
                              std::size_t num_rounds,
                              const Objective& objective,
                              std::size_t max_group_size) {
  const std::size_t c = instance.num_cells();
  const std::size_t d = num_rounds;
  if (d == 0 || d > c) {
    throw std::invalid_argument("plan_dp_over_order: need 1 <= d <= c");
  }
  if (order.size() != c) {
    throw std::invalid_argument("plan_dp_over_order: order length != cells");
  }
  {
    std::vector<bool> seen(c, false);
    for (const CellId cell : order) {
      if (cell >= c || seen[cell]) {
        throw std::invalid_argument(
            "plan_dp_over_order: order is not a permutation of the cells");
      }
      seen[cell] = true;
    }
  }
  const std::size_t cap =
      max_group_size == 0 ? c : max_group_size;
  if (cap * d < c) {
    throw std::invalid_argument(
        "plan_dp_over_order: d groups of at most max_group_size cells "
        "cannot cover every cell");
  }

  const std::vector<double> stop = stop_by_prefix(instance, order, objective);

  // E[l][k]: minimal conditional expected paging for an (l+1)-round
  // strategy over the last k cells of the order; X[l][k]: the minimizing
  // first-group size (lines 15–25 of Fig. 1, 0-based here).
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<std::vector<double>> best(d, std::vector<double>(c + 1, kInf));
  std::vector<std::vector<std::size_t>> choice(
      d, std::vector<std::size_t>(c + 1, 0));
  for (std::size_t k = 1; k <= c; ++k) {
    if (k <= cap) {
      best[0][k] = static_cast<double>(k);
      choice[0][k] = k;
    }
  }
  for (std::size_t l = 1; l < d; ++l) {
    for (std::size_t k = l + 1; k <= c; ++k) {
      // x = cells paged now; the remaining k-x cells must fit into l
      // groups of at most `cap` cells, and every group is non-empty.
      const std::size_t x_max = std::min({k - l, cap});
      const std::size_t x_min = k > l * cap ? k - l * cap : 1;
      const double denom = 1.0 - stop[c - k];
      for (std::size_t x = x_min; x <= x_max; ++x) {
        if (best[l - 1][k - x] == kInf) continue;
        const double continue_prob =
            denom <= 0.0
                ? 0.0
                : std::max(0.0, (1.0 - stop[c - k + x]) / denom);
        const double value = static_cast<double>(x) +
                             continue_prob * best[l - 1][k - x];
        if (value < best[l][k]) {
          best[l][k] = value;
          choice[l][k] = x;
        }
      }
    }
  }
  if (best[d - 1][c] == kInf) {
    throw std::logic_error("plan_dp_over_order: no feasible plan (bug)");
  }

  // Backtrack group sizes (lines 26–29 of Fig. 1).
  std::vector<std::size_t> sizes(d, 0);
  std::size_t remaining = c;
  for (std::size_t l = d; l-- > 0;) {
    const std::size_t x = choice[l][remaining];
    sizes[d - 1 - l] = x;
    remaining -= x;
  }
  if (remaining != 0) {
    throw std::logic_error("plan_dp_over_order: backtracking mismatch (bug)");
  }

  PlanResult result{
      .strategy = Strategy::from_order_and_sizes(order, sizes),
      .expected_paging = 0.0,
      .order = std::move(order),
      .group_sizes = std::move(sizes),
  };
  result.expected_paging =
      expected_paging(instance, result.strategy, objective);
  return result;
}

PlanResult plan_greedy(const Instance& instance, std::size_t num_rounds,
                       const Objective& objective) {
  return plan_dp_over_order(instance, greedy_cell_order(instance), num_rounds,
                            objective);
}

}  // namespace confcall::core
