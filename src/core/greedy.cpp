#include "core/greedy.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "core/evaluator.h"
#include "support/arena.h"

namespace confcall::core {

std::vector<CellId> greedy_cell_order(const Instance& instance) {
  const std::vector<double> weights = instance.cell_weights();
  std::vector<CellId> order(instance.num_cells());
  std::iota(order.begin(), order.end(), CellId{0});
  std::stable_sort(order.begin(), order.end(),
                   [&weights](CellId a, CellId b) {
                     return weights[a] > weights[b];
                   });
  return order;
}

std::vector<double> stop_by_prefix(const Instance& instance,
                                   std::span<const CellId> order,
                                   const Objective& objective) {
  const std::size_t m = instance.num_devices();
  const std::size_t c = instance.num_cells();
  if (order.size() != c) {
    throw std::invalid_argument("stop_by_prefix: order length != cells");
  }
  // Compensated per-device prefix mass in structure-of-arrays lanes
  // (sums/comps), fed straight from the instance's column-major mirror —
  // the j-th step reads one contiguous m-run, no per-call gather copy.
  // Lanes are independent, so the loop vectorizes without reassociating
  // any device's compensated sum (bit-identical to the KahanSum path).
  // Clamping happens only at the point of use so no drift is carried into
  // later prefixes (large-c instances used to saturate q_i above 1 and
  // flatten the tail of F).
  auto& arena = support::ScratchArena::local();
  const support::ScratchArena::Scope arena_scope(arena);
  const std::span<double> sums = arena.alloc<double>(m, 0.0);
  const std::span<double> comps = arena.alloc<double>(m, 0.0);
  const std::span<double> clamped = arena.alloc<double>(m, 0.0);
  std::vector<double> stop(c + 1, 0.0);
  stop[0] = objective.stop_probability(clamped);  // 0 for every objective
  for (std::size_t j = 0; j < c; ++j) {
    const std::span<const double> column = instance.column(order[j]);
    for (std::size_t i = 0; i < m; ++i) {
      const double y = column[i] - comps[i];
      const double t = sums[i] + y;
      comps[i] = (t - sums[i]) - y;
      sums[i] = t;
      clamped[i] = std::min(t, 1.0);
    }
    stop[j + 1] = objective.stop_probability(clamped);
  }
  stop[c] = 1.0;  // all cells paged: the objective is certainly met
  return stop;
}

PlanResult plan_dp_over_order(const Instance& instance,
                              std::vector<CellId> order,
                              std::size_t num_rounds,
                              const Objective& objective,
                              std::size_t max_group_size) {
  const std::size_t c = instance.num_cells();
  const std::size_t d = num_rounds;
  if (d == 0 || d > c) {
    throw std::invalid_argument("plan_dp_over_order: need 1 <= d <= c");
  }
  if (order.size() != c) {
    throw std::invalid_argument("plan_dp_over_order: order length != cells");
  }
  {
    std::vector<bool> seen(c, false);
    for (const CellId cell : order) {
      if (cell >= c || seen[cell]) {
        throw std::invalid_argument(
            "plan_dp_over_order: order is not a permutation of the cells");
      }
      seen[cell] = true;
    }
  }
  const std::size_t cap =
      max_group_size == 0 ? c : max_group_size;
  if (cap * d < c) {
    throw std::invalid_argument(
        "plan_dp_over_order: d groups of at most max_group_size cells "
        "cannot cover every cell");
  }

  const std::vector<double> stop = stop_by_prefix(instance, order, objective);

  // E(ℓ, k): minimal conditional expected paging for an (ℓ+1)-round
  // strategy over the last k cells of the order (lines 15–25 of Fig. 1,
  // 0-based here). Row ℓ only reads row ℓ−1, so the value table is two
  // flat (c+1)-rows ping-ponged per level; only the minimizing first-group
  // sizes need all d levels (for the backtrack), and they fit u32. Total
  // working set is O(dc) int32 + O(c) doubles — the paper's O(m + dc)
  // space — where the old vector-of-vectors kept d doubled rows plus d
  // size_t rows behind separate allocations.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  auto& arena = support::ScratchArena::local();
  const support::ScratchArena::Scope arena_scope(arena);
  std::span<double> prev = arena.alloc<double>(c + 1, kInf);  // row l-1 of E
  std::span<double> cur = arena.alloc<double>(c + 1, kInf);   // row l filled
  const std::span<std::uint32_t> choice =
      arena.alloc<std::uint32_t>(d * (c + 1), std::uint32_t{0});
  for (std::size_t k = 1; k <= c; ++k) {
    if (k <= cap) {
      prev[k] = static_cast<double>(k);
      choice[k] = static_cast<std::uint32_t>(k);
    }
  }
  for (std::size_t l = 1; l < d; ++l) {
    std::fill(cur.begin(), cur.end(), kInf);
    std::uint32_t* const choice_row = choice.data() + l * (c + 1);
    for (std::size_t k = l + 1; k <= c; ++k) {
      // x = cells paged now; the remaining k-x cells must fit into l
      // groups of at most `cap` cells, and every group is non-empty.
      const std::size_t x_max = std::min({k - l, cap});
      const std::size_t x_min = k > l * cap ? k - l * cap : 1;
      const double denom = 1.0 - stop[c - k];
      double best_value = kInf;
      std::uint32_t best_x = 0;
      for (std::size_t x = x_min; x <= x_max; ++x) {
        if (prev[k - x] == kInf) continue;
        const double continue_prob =
            denom <= 0.0
                ? 0.0
                : std::max(0.0, (1.0 - stop[c - k + x]) / denom);
        const double value =
            static_cast<double>(x) + continue_prob * prev[k - x];
        if (value < best_value) {
          best_value = value;
          best_x = static_cast<std::uint32_t>(x);
        }
      }
      cur[k] = best_value;
      choice_row[k] = best_x;
    }
    std::swap(prev, cur);
  }
  if (prev[c] == kInf) {  // prev holds row d-1 after the final swap
    throw std::logic_error("plan_dp_over_order: no feasible plan (bug)");
  }

  // Backtrack group sizes (lines 26–29 of Fig. 1).
  std::vector<std::size_t> sizes(d, 0);
  std::size_t remaining = c;
  for (std::size_t l = d; l-- > 0;) {
    const std::size_t x = choice[l * (c + 1) + remaining];
    sizes[d - 1 - l] = x;
    remaining -= x;
  }
  if (remaining != 0) {
    throw std::logic_error("plan_dp_over_order: backtracking mismatch (bug)");
  }

  PlanResult result{
      .strategy = Strategy::from_order_and_sizes(order, sizes),
      .expected_paging = 0.0,
      .order = std::move(order),
      .group_sizes = std::move(sizes),
  };
  result.expected_paging =
      expected_paging(instance, result.strategy, objective);
  return result;
}

PlanResult plan_greedy(const Instance& instance, std::size_t num_rounds,
                       const Objective& objective) {
  return plan_dp_over_order(instance, greedy_cell_order(instance), num_rounds,
                            objective);
}

}  // namespace confcall::core
