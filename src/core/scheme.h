// The Section 5 approximation scheme, made practical.
//
// Paper: "we assume that the set of probabilities ... can be covered by a
// constant number of real intervals of constant length. This allows us to
// search the space of solutions exhaustively in polynomial time." The
// recipe implemented here for ARBITRARY instances:
//
//   1. quantize every probability entry to one of `levels` representative
//      values per device (equal-width buckets over the row's range) and
//      renormalize — columns now take at most levels^m distinct values;
//   2. solve the quantized instance EXACTLY with the typed solver
//      (polynomial for constantly many column types);
//   3. run the resulting strategy on the ORIGINAL instance.
//
// The coarser the quantization, the cheaper step 2 and the larger the
// modelling error; `levels -> infinity` recovers the instance exactly (and
// the exponential exact search). The result reports the realized column
// count and a per-entry quantization radius so callers can trade accuracy
// against cost knowingly.
#pragma once

#include <cstdint>

#include "core/greedy.h"
#include "core/instance.h"
#include "core/objective.h"

namespace confcall::core {

/// Snaps each entry of each row to the midpoint of its equal-width bucket
/// ([row min, row max] split into `levels` buckets) and renormalizes the
/// row. Throws std::invalid_argument when levels == 0.
Instance quantize_instance(const Instance& instance, std::size_t levels);

/// Result of the quantize-then-solve scheme.
struct SchemePlanResult {
  Strategy strategy;
  /// EP of `strategy` on the ORIGINAL instance (what the caller pays).
  double expected_paging = 0.0;
  /// EP the quantized model predicted for the same strategy.
  double quantized_expected_paging = 0.0;
  /// Distinct probability columns after quantization (drives the typed
  /// solver's cost).
  std::size_t distinct_columns = 0;
  /// Largest |original - quantized| entry after renormalization — a
  /// diagnostic for how aggressive the quantization was.
  double max_entry_error = 0.0;
};

/// Runs the scheme. Propagates the typed solver's std::invalid_argument
/// when the quantization still leaves too many column types for the node
/// limit (retry with fewer levels).
SchemePlanResult plan_quantized_exact(const Instance& instance,
                                      std::size_t num_rounds,
                                      std::size_t levels,
                                      const Objective& objective =
                                          Objective::all_of(),
                                      std::uint64_t node_limit = 20'000'000);

}  // namespace confcall::core
