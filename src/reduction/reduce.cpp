#include "reduction/reduce.h"

#include <numeric>
#include <stdexcept>

namespace confcall::reduction {

using prob::Rational;

Rational lemma31_objective(std::size_t c, const Rational& x,
                           const Rational& y) {
  const Rational c_rat(static_cast<std::int64_t>(c));
  const Rational coeff =
      Rational(1) - Rational(3, 2) / c_rat;  // 1 - 3/(2c)
  return (c_rat - y) * (coeff * y + x) * (y - x);
}

Rational reduction_expected_paging(std::size_t c, const Rational& x,
                                   const Rational& y) {
  const Rational c_rat(static_cast<std::int64_t>(c));
  const Rational denominator =
      (c_rat - Rational(1, 2)) * (c_rat - Rational(1));
  return c_rat - lemma31_objective(c, x, y) / denominator;
}

ConferenceCallReduction reduce_quasipartition1_to_conference_call(
    std::span<const std::int64_t> sizes) {
  const std::size_t c = sizes.size();
  if (c < 3 || c % 3 != 0) {
    throw std::invalid_argument(
        "reduce_quasipartition1: need c >= 3 with 3 | c");
  }
  std::int64_t total = 0;
  for (const std::int64_t s : sizes) {
    if (s < 0) {
      throw std::invalid_argument("reduce_quasipartition1: negative size");
    }
    total += s;
  }
  if (total <= 0) {
    throw std::invalid_argument(
        "reduce_quasipartition1: sizes must not all be zero");
  }
  for (const std::int64_t s : sizes) {
    if (s >= total) {
      throw std::invalid_argument(
          "reduce_quasipartition1: a size equals the total; no partition "
          "exists (Lemma 3.2 assumes s_i < S)");
    }
  }

  const Rational c_rat(static_cast<std::int64_t>(c));
  const Rational total_rat(total);
  const Rational p_scale = (c_rat - Rational(1, 2)).reciprocal();
  const Rational q_scale = (c_rat - Rational(1)).reciprocal();
  const Rational p_shift = Rational(1) - Rational(3, 2) / c_rat;

  std::vector<Rational> flat(2 * c);
  for (std::size_t j = 0; j < c; ++j) {
    const Rational fraction = Rational(sizes[j]) / total_rat;
    flat[j] = p_scale * (fraction + p_shift);           // device 1
    flat[c + j] = q_scale * (Rational(1) - fraction);   // device 2
  }

  ConferenceCallReduction out{
      .instance = core::RationalInstance(2, c, std::move(flat)),
      .quasipartition_optimum = reduction_expected_paging(
          c, Rational(1, 2),
          Rational(2 * static_cast<std::int64_t>(c), 3)),
  };
  return out;
}

core::Instance lift_two_device_instance(const core::Instance& two_devices,
                                        std::size_t m, double extra_mass) {
  if (two_devices.num_devices() != 2) {
    throw std::invalid_argument("lift_two_device_instance: need m = 2 input");
  }
  if (m < 2) {
    throw std::invalid_argument("lift_two_device_instance: need m >= 2");
  }
  if (extra_mass <= 0.0 || extra_mass >= 1.0) {
    throw std::invalid_argument(
        "lift_two_device_instance: extra_mass must be in (0, 1)");
  }
  const std::size_t c = two_devices.num_cells();
  std::vector<double> flat(m * (c + 1), 0.0);
  // The two original devices: scaled rows, remainder on the new last cell.
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < c; ++j) {
      flat[i * (c + 1) + j] =
          (1.0 - extra_mass) *
          two_devices.prob(static_cast<core::DeviceId>(i),
                           static_cast<core::CellId>(j));
    }
    flat[i * (c + 1) + c] = extra_mass;
  }
  // The m - 2 auxiliary devices sit in the new cell with certainty.
  for (std::size_t i = 2; i < m; ++i) {
    flat[i * (c + 1) + c] = 1.0;
  }
  return core::Instance(m, c + 1, std::move(flat));
}

}  // namespace confcall::reduction
