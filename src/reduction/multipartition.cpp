#include "reduction/multipartition.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "reduction/partition.h"

namespace confcall::reduction {

using prob::BigInt;
using prob::Rational;

namespace {

BigInt lcm(const BigInt& a, const BigInt& b) {
  return a / BigInt::gcd(a, b) * b;
}

/// Rational r with r * scale an integer -> that integer (throws otherwise).
std::int64_t to_scaled_int64(const Rational& value, const BigInt& scale) {
  const Rational scaled = value * Rational(scale);
  if (!scaled.is_integer()) {
    throw std::logic_error("multipartition: scaling did not clear "
                           "denominators (bug)");
  }
  return scaled.num().to_int64();
}

}  // namespace

MultipartitionParams multipartition_params(std::size_t m, std::size_t d) {
  if (m < 2 || d < 2) {
    throw std::invalid_argument("multipartition_params: need m >= 2, d >= 2");
  }
  MultipartitionParams params;
  params.m = m;
  params.d = d;

  const Rational m_rat(static_cast<std::int64_t>(m));
  const Rational one(1);
  // alpha_1 = m/(m+1); alpha_k = m / (m + 1 - alpha_{k-1}^m).
  params.alpha.reserve(d - 1);
  params.alpha.push_back(m_rat / (m_rat + one));
  for (std::size_t k = 2; k <= d - 1; ++k) {
    const Rational prev_pow =
        Rational::pow(params.alpha.back(), static_cast<unsigned>(m));
    params.alpha.push_back(m_rat / (m_rat + one - prev_pow));
  }

  // beta_j = prod_{k=j..d-1} alpha_k for j >= 1; beta_0 = 0, beta_d = 1.
  params.beta.assign(d + 1, Rational(0));
  params.beta[d] = one;
  for (std::size_t j = d; j-- > 1;) {
    params.beta[j] = params.alpha[j - 1] * params.beta[j + 1];
  }
  params.beta[0] = Rational(0);

  // r_j = beta_j - beta_{j-1}.
  params.r.reserve(d);
  for (std::size_t j = 1; j <= d; ++j) {
    params.r.push_back(params.beta[j] - params.beta[j - 1]);
  }

  // Cumulative mass through round j is beta_j / 2 for j < d (Lemma 3.4's
  // unique maximizer), remainder in round d.
  const Rational half(1, 2);
  params.x.reserve(d);
  for (std::size_t j = 1; j <= d - 1; ++j) {
    params.x.push_back((params.beta[j] - params.beta[j - 1]) * half);
  }
  params.x.push_back(one - params.beta[d - 1] * half);

  params.lcm_denominator = BigInt(1);
  for (const Rational& rj : params.r) {
    params.lcm_denominator = lcm(params.lcm_denominator, rj.den());
  }
  return params;
}

QuasipartitionSpec quasipartition_spec(const MultipartitionParams& params) {
  const std::size_t d = params.d;
  std::vector<std::size_t> pi(d);
  std::iota(pi.begin(), pi.end(), std::size_t{0});
  std::stable_sort(pi.begin(), pi.end(), [&params](std::size_t a,
                                                   std::size_t b) {
    return params.x[a] > params.x[b];
  });
  const std::size_t cand1 = pi[d - 2];  // pi(d-1) in paper's 1-based terms
  const std::size_t cand2 = pi[d - 1];  // pi(d)
  // u = the index with the smaller r; pi(d) on a tie.
  std::size_t u, v;
  if (params.r[cand1] < params.r[cand2]) {
    u = cand1;
    v = cand2;
  } else {
    u = cand2;
    v = cand1;
  }
  QuasipartitionSpec spec;
  spec.r_u = params.r[u];
  spec.r_v = params.r[v];
  spec.x_u = params.x[u];
  spec.x_v = params.x[v];
  spec.M = params.lcm_denominator;
  return spec;
}

QuasipartitionSpec quasipartition1_spec() {
  QuasipartitionSpec spec;
  spec.r_u = Rational(1, 3);
  spec.r_v = Rational(2, 3);
  spec.x_u = Rational(1, 2);
  spec.x_v = Rational(1, 2);
  spec.M = BigInt(3);
  return spec;
}

std::optional<std::vector<std::size_t>> solve_quasipartition2(
    const Quasipartition2Instance& instance) {
  const auto& spec = instance.spec;
  const Rational h_rat(instance.h);
  const Rational m_rat(spec.M);
  const Rational n_expected = m_rat * (spec.r_u + spec.r_v) * h_rat;
  if (!n_expected.is_integer() ||
      n_expected.num().to_int64() !=
          static_cast<std::int64_t>(instance.sizes.size())) {
    throw std::invalid_argument(
        "solve_quasipartition2: size count does not equal M*(r_u+r_v)*h");
  }
  const Rational cardinality_rat = m_rat * spec.r_v * h_rat;
  if (!cardinality_rat.is_integer()) {
    throw std::invalid_argument(
        "solve_quasipartition2: M*r_v*h is not an integer");
  }
  const auto cardinality =
      static_cast<std::size_t>(cardinality_rat.num().to_int64());

  const std::int64_t total = std::accumulate(
      instance.sizes.begin(), instance.sizes.end(), std::int64_t{0});
  const Rational target_rat =
      Rational(total) * spec.x_v / (spec.x_u + spec.x_v);
  if (!target_rat.is_integer()) return std::nullopt;
  return solve_cardinality_subset_sum(instance.sizes, cardinality,
                                      target_rat.num().to_int64());
}

Quasipartition2Instance reduce_partition_to_quasipartition2(
    std::span<const std::int64_t> partition_sizes,
    const QuasipartitionSpec& spec) {
  const std::size_t g = partition_sizes.size();
  if (g == 0 || g % 2 != 0) {
    throw std::invalid_argument(
        "reduce_partition_to_quasipartition2: g must be positive and even");
  }
  std::int64_t input_total = 0;
  for (const std::int64_t s : partition_sizes) {
    if (s <= 0) {
      throw std::invalid_argument(
          "reduce_partition_to_quasipartition2: sizes must be positive");
    }
    input_total += s;
  }

  // Integer group counts: M*r_u and M*r_v (integral since M clears the
  // denominators of every r_j).
  const Rational m_rat(spec.M);
  const Rational mru_rat = m_rat * spec.r_u;
  const Rational mrv_rat = m_rat * spec.r_v;
  if (!mru_rat.is_integer() || !mrv_rat.is_integer()) {
    throw std::invalid_argument(
        "reduce_partition_to_quasipartition2: M does not clear r_u/r_v");
  }
  const std::int64_t mru = mru_rat.num().to_int64();
  const std::int64_t mrv = mrv_rat.num().to_int64();
  if (mru <= 0 || mrv <= 0 || mru > mrv) {
    throw std::invalid_argument(
        "reduce_partition_to_quasipartition2: invalid spec (need "
        "0 < M*r_u <= M*r_v)");
  }

  // h = 2*ceil(g / (2*M*r_u)) makes both pad counts non-negative.
  const std::int64_t half_g = static_cast<std::int64_t>(g) / 2;
  const std::int64_t h =
      2 * ((static_cast<std::int64_t>(g) + 2 * mru - 1) / (2 * mru));
  const std::int64_t pad_u = mru * h - 1 - half_g;
  const std::int64_t pad_v = mrv * h - 1 - half_g;
  if (pad_u < 0 || pad_v < 0) {
    throw std::logic_error(
        "reduce_partition_to_quasipartition2: negative padding (bug)");
  }

  // p = ceil(log2(sum + 1)): the 2^p summand forces exact cardinality g/2
  // among the real sizes.
  unsigned p = 0;
  while ((std::int64_t{1} << p) < input_total + 1) ++p;
  const std::int64_t boost = std::int64_t{1} << p;

  // Classes by mass fraction: the side with the larger x carries the large
  // special size (x_v - x_u/3 style); with x_u == x_v both specials are
  // equal and placement is immaterial.
  const Rational w = spec.x_u + spec.x_v;
  const Rational& x_small = spec.x_u <= spec.x_v ? spec.x_u : spec.x_v;
  const Rational& x_big = spec.x_u <= spec.x_v ? spec.x_v : spec.x_u;
  const Rational third(1, 3);
  const Rational special_big = (x_big - x_small * third) / w;
  const Rational special_small = Rational(2, 3) * x_small / w;

  // The g real sizes are scaled to sum to 1 - special_big - special_small
  // (= special_small; see Lemma 3.7). boosted_total = sum of (s_k + 2^p).
  BigInt boosted_total(0);
  for (const std::int64_t s : partition_sizes) {
    boosted_total += BigInt(s + boost);
  }
  const Rational real_scale =
      special_small / Rational(boosted_total);

  // Clear all denominators with one common scale so the instance is
  // integral, including the decision target total * x_v / w.
  BigInt denom_lcm = real_scale.den();
  denom_lcm = lcm(denom_lcm, special_big.den());
  denom_lcm = lcm(denom_lcm, special_small.den());
  denom_lcm = lcm(denom_lcm, (spec.x_v / w).den());

  Quasipartition2Instance out;
  out.spec = spec;
  out.h = h;
  out.sizes.reserve(g + static_cast<std::size_t>(pad_u + pad_v) + 2);
  for (const std::int64_t s : partition_sizes) {
    out.sizes.push_back(
        to_scaled_int64(Rational(s + boost) * real_scale, denom_lcm));
  }
  for (std::int64_t k = 0; k < pad_u + pad_v; ++k) out.sizes.push_back(0);
  out.sizes.push_back(to_scaled_int64(special_big, denom_lcm));
  out.sizes.push_back(to_scaled_int64(special_small, denom_lcm));
  return out;
}

}  // namespace confcall::reduction
