// Section 3.2 machinery: the Lemma 3.4 constants and the Multipartition /
// Quasipartition2 problems that prove NP-hardness of the Conference Call
// problem for EVERY fixed m >= 2 and d >= 2.
//
// Lemma 3.4 pins down, for given (m, d), the group cardinalities and
// probability-mass split at which the reduction's objective function is
// uniquely maximized:
//
//   alpha_1 = m/(m+1),  alpha_k = m/(m+1-alpha_{k-1}^m)   (k = 2..d-1)
//   b_d = c,            b_{k-1} = alpha_{k-1} * b_k,      b_0 = 0
//
// expressed here as exact rationals of c: beta_k = b_k/c. The derived
// fractions r_j = beta_j - beta_{j-1} (group-size fractions) and
// x_j (mass fractions: cumulative sum x_1+..+x_r = beta_r/2 for r < d,
// x_d the remainder) parameterize the Multipartition problem; M is the
// least common multiple of the r_j denominators, so instances exist for
// every c that is a multiple of M.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "prob/bigint.h"
#include "prob/rational.h"

namespace confcall::reduction {

/// The exact constants of Lemma 3.4 for fixed m >= 2, d >= 2.
struct MultipartitionParams {
  std::size_t m = 0;  ///< number of devices
  std::size_t d = 0;  ///< number of rounds
  /// alpha_1 .. alpha_{d-1}; strictly increasing, all in (0, 1).
  std::vector<prob::Rational> alpha;
  /// beta_0 .. beta_d with beta_0 = 0, beta_d = 1; strictly increasing.
  std::vector<prob::Rational> beta;
  /// Group-size fractions r_1 .. r_d (sum to 1, all positive).
  std::vector<prob::Rational> r;
  /// Mass fractions x_1 .. x_d (sum to 1, all positive).
  std::vector<prob::Rational> x;
  /// Least common multiple of the denominators of the r_j.
  prob::BigInt lcm_denominator;
};

/// Computes the Lemma 3.4 constants. Throws std::invalid_argument unless
/// m >= 2 and d >= 2. Denominators grow roughly like m^(m^d); keep m and d
/// small (the paper only needs them constant).
MultipartitionParams multipartition_params(std::size_t m, std::size_t d);

/// The (u, v) selection of the Quasipartition2 definition: sort the x_j
/// non-increasingly by a permutation pi; look at the two smallest,
/// pi(d-1) and pi(d); u is the one with the smaller r (pi(d) on a tie),
/// v the other.
struct QuasipartitionSpec {
  prob::Rational r_u, r_v;  ///< group-size fractions of the two classes
  prob::Rational x_u, x_v;  ///< mass fractions of the two classes
  prob::BigInt M;           ///< instance sizes are multiples of M*(r_u+r_v)
};

/// Derives the Quasipartition2 parameters from Lemma 3.4 constants.
QuasipartitionSpec quasipartition_spec(const MultipartitionParams& params);

/// The parameterization under which Quasipartition2 *is* Quasipartition1
/// (paper, end of Section 3.2): M = 3, r_u = 1/3, r_v = 2/3,
/// x_u = x_v = 1/2.
QuasipartitionSpec quasipartition1_spec();

/// A Quasipartition2 instance: n = M*(r_u+r_v)*h non-negative integer
/// sizes; question: is there a subset P with |P| = M*r_v*h and
/// sum(P) = total * x_v/(x_u+x_v)?
struct Quasipartition2Instance {
  QuasipartitionSpec spec;
  std::int64_t h = 0;
  std::vector<std::int64_t> sizes;
};

/// Decision + witness via the cardinality-constrained subset-sum DP.
/// Returns nullopt when no such subset exists (including when the required
/// sum is not an integer). Throws std::invalid_argument when the instance
/// dimensions are inconsistent with its spec.
std::optional<std::vector<std::size_t>> solve_quasipartition2(
    const Quasipartition2Instance& instance);

/// Lemma 3.7: reduces a Partition instance (g even, positive sizes) to a
/// Quasipartition2 instance with the given spec, such that the Partition
/// instance is solvable iff the Quasipartition2 instance is. All sizes in
/// the output are integers (the paper's unit-sum normalization is scale-
/// invariant, so we scale it away); the two special sizes of the
/// construction are the last two entries.
Quasipartition2Instance reduce_partition_to_quasipartition2(
    std::span<const std::int64_t> partition_sizes,
    const QuasipartitionSpec& spec);

}  // namespace confcall::reduction
