// The Quadratic Assignment connection (paper, Section 5.1).
//
// Burkard et al.'s Quadratic Assignment Problem (QAP): given two symmetric
// non-negative c x c matrices A and B, find a permutation pi maximizing
// sum_{k,l} A[k][l] * B[pi(k)][pi(l)].
//
// The paper notes that a QAP solution solves the Conference Call problem
// for two devices, polynomially when d is constant. The construction we
// implement: fix the group sizes s_1..s_d (for constant d there are
// O(c^{d-1}) size vectors). Writing P(L) = sum_{i in L} p_i and
// Q(L) = sum_{i in L} q_i, Lemma 2.1 gives
//
//   EP = c - sum_r |S_{r+1}| P(L_r) Q(L_r)
//      = c - sum_{k,l} W[k][l] * (p_x q_y + p_y q_x)/2
//
// where position k of the paging order holds cell x = pi(k), and
// W[k][l] = sum over rounds r such that BOTH positions k, l lie in the
// prefix of round r, of |S_{r+1}| — a symmetric matrix depending only on
// the size vector. So with A = W and B[x][y] = (p_x q_y + p_y q_x)/2 the
// QAP maximum over pi yields the minimum expected paging for those sizes;
// minimizing over size vectors solves the instance.
//
// We provide an exact QAP solver (permutation enumeration, small c), a
// 2-swap local-search heuristic, and the end-to-end bridge, which tests
// verify against solve_exact.
#pragma once

#include <cstdint>
#include <vector>

#include "core/instance.h"
#include "core/strategy.h"
#include "prob/rng.h"

namespace confcall::reduction {

/// A (maximization) QAP instance over symmetric matrices.
class QapInstance {
 public:
  /// Both matrices must be n x n and symmetric (within 1e-12); throws
  /// std::invalid_argument otherwise.
  QapInstance(std::vector<std::vector<double>> a,
              std::vector<std::vector<double>> b);

  [[nodiscard]] std::size_t size() const noexcept { return a_.size(); }
  [[nodiscard]] double a(std::size_t k, std::size_t l) const {
    return a_.at(k).at(l);
  }
  [[nodiscard]] double b(std::size_t x, std::size_t y) const {
    return b_.at(x).at(y);
  }

  /// sum_{k,l} A[k][l] B[pi(k)][pi(l)] for a permutation pi (validated).
  [[nodiscard]] double objective(
      const std::vector<std::size_t>& permutation) const;

 private:
  std::vector<std::vector<double>> a_;
  std::vector<std::vector<double>> b_;
};

/// Result of a QAP search: the permutation and its objective value.
struct QapResult {
  std::vector<std::size_t> permutation;
  double objective = 0.0;
};

/// Exact maximization by enumerating all n! permutations. Throws
/// std::invalid_argument when n > max_size_guard (default 9: 362880
/// permutations).
QapResult solve_qap_exact(const QapInstance& instance,
                          std::size_t max_size_guard = 9);

/// 2-swap local search with random restarts; deterministic given the rng.
QapResult solve_qap_local_search(const QapInstance& instance,
                                 std::size_t restarts, prob::Rng& rng);

/// Builds the QAP weight matrix W for a size vector (see file comment).
std::vector<std::vector<double>> qap_weight_matrix(
    const std::vector<std::size_t>& group_sizes);

/// Builds the B matrix (p_x q_y + p_y q_x)/2 of a two-device instance.
std::vector<std::vector<double>> qap_profile_matrix(
    const core::Instance& two_devices);

/// The Section 5.1 bridge: solves a two-device Conference Call instance by
/// minimizing over size vectors and solving a QAP per vector (exactly, so
/// c is limited by solve_qap_exact's guard). Returns the optimal strategy
/// and its expected paging; matches core::solve_exact on every instance.
/// Throws std::invalid_argument unless m = 2 and 1 <= d <= c.
struct QapBridgeResult {
  core::Strategy strategy;
  double expected_paging = 0.0;
  std::uint64_t qap_instances_solved = 0;
};
QapBridgeResult conference_call_via_qap(const core::Instance& two_devices,
                                        std::size_t num_rounds);

}  // namespace confcall::reduction
