// Lemma 3.2: the polynomial transformation from Quasipartition1 to the
// Conference Call problem restricted to m = 2 devices and d = 2 rounds —
// the heart of the paper's NP-hardness result — in exact rational
// arithmetic, plus the closed-form optimum value it certifies against.
//
// Given sizes s_1..s_c (3 | c, all s_i < S = sum s_i), the two devices'
// location probabilities are
//
//   p_i = (1/(c - 1/2)) * (s_i/S + 1 - 3/(2c))
//   q_i = (1/(c - 1))   * (1 - s_i/S)
//
// For a first-round set I with |I| = y and sum_{i in I} s_i / S = x,
// Lemma 2.1 gives EP = c - f(x, y) / ((c-1/2)(c-1)) with
//
//   f(x, y) = (c - y) * ((1 - 3/(2c)) y + x) * (y - x),
//
// and Lemma 3.1 shows f is uniquely maximized at x = 1/2, y = 2c/3. Hence
// the minimal expected paging equals
//
//   LB = c - f(1/2, 2c/3) / ((c-1/2)(c-1))
//
// if and only if the Quasipartition1 instance has a solution, and the
// optimal first-round set IS that solution.
#pragma once

#include <cstdint>
#include <span>

#include "core/instance.h"
#include "prob/rational.h"

namespace confcall::reduction {

/// Output of the Lemma 3.2 transformation.
struct ConferenceCallReduction {
  /// The m = 2 instance over c cells (cell j carries size s_{j+1}).
  core::RationalInstance instance;
  /// The closed-form optimum c - f(1/2, 2c/3)/((c-1/2)(c-1)); the true
  /// d = 2 optimum equals this value iff the quasipartition exists, and is
  /// strictly larger otherwise.
  prob::Rational quasipartition_optimum;
};

/// f(x, y) = (c - y)((1 - 3/(2c))y + x)(y - x) of Lemma 3.1, exactly.
prob::Rational lemma31_objective(std::size_t c, const prob::Rational& x,
                                 const prob::Rational& y);

/// Expected paging of the two-round strategy that pages a set with
/// cardinality y and size-fraction x first: c - f(x,y)/((c-1/2)(c-1)).
prob::Rational reduction_expected_paging(std::size_t c,
                                         const prob::Rational& x,
                                         const prob::Rational& y);

/// The Lemma 3.2 transformation. Requirements (paper): c = sizes.size()
/// is a positive multiple of 3, c >= 3, all sizes are non-negative and
/// every size is strictly less than the total (otherwise no partition can
/// exist and the transformation's probabilities would degenerate).
/// Throws std::invalid_argument on violations.
ConferenceCallReduction reduce_quasipartition1_to_conference_call(
    std::span<const std::int64_t> sizes);

/// Section 5's alternative hardness device: lifts an m = 2 instance over c
/// cells to an m-device instance over c + 1 cells by adding an extra cell
/// that holds the additional m - 2 devices with probability 1 and almost
/// all of the two original devices' mass (each original row is scaled by
/// 1 - a with mass a >= 1 - 1/c^2 moved to the new cell). An optimal
/// (d+1)-round strategy pages the new cell alone first and then follows an
/// optimal d-round strategy for the original instance. Throws
/// std::invalid_argument unless m >= 2 and 0 < extra_mass < 1.
core::Instance lift_two_device_instance(const core::Instance& two_devices,
                                        std::size_t m, double extra_mass);

}  // namespace confcall::reduction
