#include "reduction/partition.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "prob/rng.h"

namespace confcall::reduction {

std::optional<std::vector<std::size_t>> solve_cardinality_subset_sum(
    std::span<const std::int64_t> sizes, std::size_t cardinality,
    std::int64_t target, std::uint64_t work_limit) {
  const std::size_t n = sizes.size();
  for (const std::int64_t s : sizes) {
    if (s < 0) {
      throw std::invalid_argument(
          "solve_cardinality_subset_sum: negative size");
    }
  }
  if (target < 0 || cardinality > n) return std::nullopt;
  const std::uint64_t work = static_cast<std::uint64_t>(n) *
                             (cardinality + 1) *
                             (static_cast<std::uint64_t>(target) + 1);
  if (work > work_limit) {
    throw std::invalid_argument(
        "solve_cardinality_subset_sum: instance exceeds the DP work limit");
  }

  // first_reach[j][s] = index of the item that first made (count j, sum s)
  // reachable (processing items in ascending index), or -1. Entry (0, 0)
  // is the base state (-2).
  const std::size_t sums = static_cast<std::size_t>(target) + 1;
  std::vector<std::vector<std::int32_t>> first_reach(
      cardinality + 1, std::vector<std::int32_t>(sums, -1));
  first_reach[0][0] = -2;
  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t size = sizes[i];
    if (size > target) continue;
    for (std::size_t j = std::min(cardinality, i + 1); j-- > 0;) {
      for (std::size_t s = sums; s-- > static_cast<std::size_t>(size);) {
        if (first_reach[j][s - static_cast<std::size_t>(size)] != -1 &&
            first_reach[j + 1][s] == -1) {
          first_reach[j + 1][s] = static_cast<std::int32_t>(i);
        }
      }
    }
  }
  if (first_reach[cardinality][static_cast<std::size_t>(target)] == -1) {
    return std::nullopt;
  }

  std::vector<std::size_t> witness;
  std::size_t j = cardinality;
  auto s = static_cast<std::size_t>(target);
  while (j > 0) {
    const std::int32_t item = first_reach[j][s];
    witness.push_back(static_cast<std::size_t>(item));
    s -= static_cast<std::size_t>(sizes[static_cast<std::size_t>(item)]);
    --j;
  }
  std::reverse(witness.begin(), witness.end());
  return witness;
}

std::optional<std::vector<std::size_t>> solve_partition(
    std::span<const std::int64_t> sizes) {
  const std::size_t g = sizes.size();
  if (g == 0 || g % 2 != 0) return std::nullopt;
  const std::int64_t total =
      std::accumulate(sizes.begin(), sizes.end(), std::int64_t{0});
  if (total % 2 != 0) return std::nullopt;
  return solve_cardinality_subset_sum(sizes, g / 2, total / 2);
}

std::optional<std::vector<std::size_t>> solve_quasipartition1(
    std::span<const std::int64_t> sizes) {
  const std::size_t c = sizes.size();
  if (c == 0 || c % 3 != 0) {
    throw std::invalid_argument(
        "solve_quasipartition1: size count must be a positive multiple of 3");
  }
  const std::int64_t total =
      std::accumulate(sizes.begin(), sizes.end(), std::int64_t{0});
  if (total % 2 != 0) return std::nullopt;
  return solve_cardinality_subset_sum(sizes, 2 * c / 3, total / 2);
}

std::vector<std::int64_t> make_quasipartition1_yes_instance(
    std::size_t c, std::int64_t max_size, std::uint64_t seed) {
  if (c == 0 || c % 3 != 0) {
    throw std::invalid_argument(
        "make_quasipartition1_yes_instance: need 3 | c, c > 0");
  }
  if (max_size < 1) {
    throw std::invalid_argument(
        "make_quasipartition1_yes_instance: max_size must be >= 1");
  }
  prob::Rng rng(seed);
  const std::size_t in_set = 2 * c / 3;
  const std::size_t out_set = c - in_set;

  // Planted subset: 2c/3 random sizes. Complement: a random composition of
  // the same total into c/3 non-negative parts (cut-point construction).
  std::vector<std::int64_t> sizes;
  sizes.reserve(c);
  std::int64_t planted_total = 0;
  for (std::size_t i = 0; i < in_set; ++i) {
    const std::int64_t value = rng.next_in(1, max_size);
    sizes.push_back(value);
    planted_total += value;
  }
  std::vector<std::int64_t> cuts;
  cuts.reserve(out_set + 1);
  cuts.push_back(0);
  for (std::size_t i = 0; i + 1 < out_set; ++i) {
    cuts.push_back(rng.next_in(0, planted_total));
  }
  cuts.push_back(planted_total);
  std::sort(cuts.begin(), cuts.end());
  for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
    sizes.push_back(cuts[i + 1] - cuts[i]);
  }
  // Shuffle so the witness is not the identity prefix.
  rng.shuffle(sizes);
  return sizes;
}

}  // namespace confcall::reduction
