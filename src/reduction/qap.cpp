#include "reduction/qap.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <numeric>
#include <stdexcept>

#include "core/evaluator.h"

namespace confcall::reduction {

namespace {

void check_symmetric(const std::vector<std::vector<double>>& matrix,
                     const char* name) {
  const std::size_t n = matrix.size();
  for (const auto& row : matrix) {
    if (row.size() != n) {
      throw std::invalid_argument(std::string("QapInstance: ") + name +
                                  " is not square");
    }
  }
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t l = k + 1; l < n; ++l) {
      if (std::abs(matrix[k][l] - matrix[l][k]) > 1e-12) {
        throw std::invalid_argument(std::string("QapInstance: ") + name +
                                    " is not symmetric");
      }
    }
  }
}

}  // namespace

QapInstance::QapInstance(std::vector<std::vector<double>> a,
                         std::vector<std::vector<double>> b)
    : a_(std::move(a)), b_(std::move(b)) {
  if (a_.size() != b_.size() || a_.empty()) {
    throw std::invalid_argument("QapInstance: size mismatch or empty");
  }
  check_symmetric(a_, "A");
  check_symmetric(b_, "B");
}

double QapInstance::objective(
    const std::vector<std::size_t>& permutation) const {
  const std::size_t n = size();
  if (permutation.size() != n) {
    throw std::invalid_argument("QapInstance: permutation length mismatch");
  }
  std::vector<bool> seen(n, false);
  for (const std::size_t x : permutation) {
    if (x >= n || seen[x]) {
      throw std::invalid_argument("QapInstance: not a permutation");
    }
    seen[x] = true;
  }
  double total = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t l = 0; l < n; ++l) {
      total += a_[k][l] * b_[permutation[k]][permutation[l]];
    }
  }
  return total;
}

QapResult solve_qap_exact(const QapInstance& instance,
                          std::size_t max_size_guard) {
  const std::size_t n = instance.size();
  if (n > max_size_guard) {
    throw std::invalid_argument(
        "solve_qap_exact: n! enumeration beyond the guard");
  }
  std::vector<std::size_t> permutation(n);
  std::iota(permutation.begin(), permutation.end(), std::size_t{0});
  QapResult best{permutation, instance.objective(permutation)};
  while (std::next_permutation(permutation.begin(), permutation.end())) {
    const double value = instance.objective(permutation);
    if (value > best.objective) {
      best.permutation = permutation;
      best.objective = value;
    }
  }
  return best;
}

QapResult solve_qap_local_search(const QapInstance& instance,
                                 std::size_t restarts, prob::Rng& rng) {
  const std::size_t n = instance.size();
  if (restarts == 0) {
    throw std::invalid_argument("solve_qap_local_search: zero restarts");
  }
  QapResult best;
  best.objective = -1.0;
  for (std::size_t restart = 0; restart < restarts; ++restart) {
    std::vector<std::size_t> permutation(n);
    std::iota(permutation.begin(), permutation.end(), std::size_t{0});
    if (restart != 0) rng.shuffle(permutation);
    double value = instance.objective(permutation);
    // Steepest-ascent 2-swap until a local maximum.
    bool improved = true;
    while (improved) {
      improved = false;
      for (std::size_t k = 0; k < n; ++k) {
        for (std::size_t l = k + 1; l < n; ++l) {
          std::swap(permutation[k], permutation[l]);
          const double candidate = instance.objective(permutation);
          if (candidate > value + 1e-15) {
            value = candidate;
            improved = true;
          } else {
            std::swap(permutation[k], permutation[l]);
          }
        }
      }
    }
    if (value > best.objective) {
      best.permutation = std::move(permutation);
      best.objective = value;
    }
  }
  return best;
}

std::vector<std::vector<double>> qap_weight_matrix(
    const std::vector<std::size_t>& group_sizes) {
  const std::size_t c = std::accumulate(group_sizes.begin(),
                                        group_sizes.end(), std::size_t{0});
  const std::size_t d = group_sizes.size();
  if (d == 0) {
    throw std::invalid_argument("qap_weight_matrix: no groups");
  }
  // prefix_r = s_1 + ... + s_{r+1} (0-based r); positions k < prefix_r lie
  // inside round r's prefix L_r.
  std::vector<std::size_t> prefix(d);
  std::size_t running = 0;
  for (std::size_t r = 0; r < d; ++r) {
    running += group_sizes[r];
    prefix[r] = running;
  }
  std::vector<std::vector<double>> w(c, std::vector<double>(c, 0.0));
  for (std::size_t r = 0; r + 1 < d; ++r) {
    const auto next_size = static_cast<double>(group_sizes[r + 1]);
    for (std::size_t k = 0; k < prefix[r]; ++k) {
      for (std::size_t l = 0; l < prefix[r]; ++l) {
        w[k][l] += next_size;
      }
    }
  }
  return w;
}

std::vector<std::vector<double>> qap_profile_matrix(
    const core::Instance& two_devices) {
  if (two_devices.num_devices() != 2) {
    throw std::invalid_argument("qap_profile_matrix: need exactly 2 devices");
  }
  const std::size_t c = two_devices.num_cells();
  std::vector<std::vector<double>> b(c, std::vector<double>(c, 0.0));
  for (std::size_t x = 0; x < c; ++x) {
    for (std::size_t y = 0; y < c; ++y) {
      const double pq =
          two_devices.prob(0, static_cast<core::CellId>(x)) *
              two_devices.prob(1, static_cast<core::CellId>(y)) +
          two_devices.prob(0, static_cast<core::CellId>(y)) *
              two_devices.prob(1, static_cast<core::CellId>(x));
      b[x][y] = pq / 2.0;
    }
  }
  return b;
}

namespace {

/// Enumerates all positive size vectors summing to c over d rounds.
void for_each_size_vector(
    std::size_t c, std::size_t d,
    const std::function<void(const std::vector<std::size_t>&)>& visit) {
  std::vector<std::size_t> sizes(d, 1);
  // Distribute the remaining c - d cells with an odometer over the first
  // d - 1 coordinates; the last absorbs the rest.
  std::function<void(std::size_t, std::size_t)> recurse =
      [&](std::size_t index, std::size_t remaining) {
        if (index + 1 == d) {
          sizes[index] = remaining + 1;
          visit(sizes);
          return;
        }
        for (std::size_t extra = 0; extra <= remaining; ++extra) {
          sizes[index] = 1 + extra;
          recurse(index + 1, remaining - extra);
        }
      };
  recurse(0, c - d);
}

}  // namespace

QapBridgeResult conference_call_via_qap(const core::Instance& two_devices,
                                        std::size_t num_rounds) {
  const std::size_t c = two_devices.num_cells();
  if (two_devices.num_devices() != 2) {
    throw std::invalid_argument("conference_call_via_qap: need m = 2");
  }
  if (num_rounds == 0 || num_rounds > c) {
    throw std::invalid_argument("conference_call_via_qap: need 1 <= d <= c");
  }
  const auto profile = qap_profile_matrix(two_devices);

  double best_ep = static_cast<double>(c);
  std::vector<std::size_t> best_sizes(1, c);
  std::vector<std::size_t> best_permutation(c);
  std::iota(best_permutation.begin(), best_permutation.end(),
            std::size_t{0});
  std::uint64_t solved = 0;

  for_each_size_vector(c, num_rounds, [&](const std::vector<std::size_t>&
                                              sizes) {
    const QapInstance qap(qap_weight_matrix(sizes), profile);
    const QapResult result = solve_qap_exact(qap);
    ++solved;
    const double ep = static_cast<double>(c) - result.objective;
    if (ep < best_ep) {
      best_ep = ep;
      best_sizes = sizes;
      best_permutation = result.permutation;
    }
  });

  std::vector<core::CellId> order(c);
  for (std::size_t k = 0; k < c; ++k) {
    order[k] = static_cast<core::CellId>(best_permutation[k]);
  }
  QapBridgeResult bridge{
      .strategy = core::Strategy::from_order_and_sizes(order, best_sizes),
      .expected_paging = best_ep,
      .qap_instances_solved = solved,
  };
  // Recompute through the evaluator as a consistency guarantee.
  bridge.expected_paging =
      core::expected_paging(two_devices, bridge.strategy);
  return bridge;
}

}  // namespace confcall::reduction
