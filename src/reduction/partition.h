// Partition-family problems used by the paper's NP-hardness proofs
// (Section 3), together with pseudo-polynomial decision solvers that act
// as ground truth in tests and experiments.
//
//  * Partition (Garey & Johnson [10, p. 223], the cardinality-constrained
//    variant the paper cites): given g sizes (g even), is there a subset
//    of EXACTLY g/2 elements summing to half the total?
//  * Quasipartition1: given c sizes with 3 | c, is there a subset of
//    exactly 2c/3 elements summing to half the total?
//
// Both are special cases of "subset of cardinality k summing to target",
// solvable in O(n · k · total) time by dynamic programming — exponential
// in the bit-size of the numbers, which is exactly why the paper's
// reduction scales sizes by 2^p to encode cardinality.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace confcall::reduction {

/// Decides whether some subset of exactly `cardinality` indices of `sizes`
/// sums to `target`; returns the witness indices (ascending) or nullopt.
/// Sizes must be non-negative. Throws std::invalid_argument on negative
/// sizes or when n*k*total would exceed `work_limit` DP cells.
std::optional<std::vector<std::size_t>> solve_cardinality_subset_sum(
    std::span<const std::int64_t> sizes, std::size_t cardinality,
    std::int64_t target, std::uint64_t work_limit = 400'000'000);

/// The Partition problem as used in the paper: |P| = g/2 and
/// sum(P) = total/2. Returns a witness or nullopt (also nullopt when the
/// total is odd or g is odd — then no partition exists by definition).
std::optional<std::vector<std::size_t>> solve_partition(
    std::span<const std::int64_t> sizes);

/// Quasipartition1: |I| = 2c/3 and sum(I) = total/2. Throws
/// std::invalid_argument unless 3 divides the number of sizes. Returns a
/// witness or nullopt (nullopt when the total is odd).
std::optional<std::vector<std::size_t>> solve_quasipartition1(
    std::span<const std::int64_t> sizes);

/// Generates a YES-instance of Quasipartition1 with c sizes (3 | c): a
/// random instance constructed so that a planted subset of 2c/3 elements
/// sums to half the total. `max_size` bounds the entries.
std::vector<std::int64_t> make_quasipartition1_yes_instance(
    std::size_t c, std::int64_t max_size, std::uint64_t seed);

}  // namespace confcall::reduction
