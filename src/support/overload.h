// Overload-protection primitives: deadlines, circuit breakers, admission
// control.
//
// The paper's delay constraint d is fundamentally a deadline: a
// conference call that cannot be established in time is worthless, so a
// production service should degrade plan QUALITY before it degrades
// LATENCY, and reject work it cannot finish rather than finish it late.
// This header holds the three generic building blocks of that policy:
//
//   * Deadline — an absolute monotonic expiry propagated by value through
//     call chains (arrival -> admission -> planning -> paging rounds).
//   * CircuitBreaker — closed -> open -> half-open over a sliding outcome
//     window, so a repeatedly-failing dependency (e.g. an exact planner
//     tier that keeps overrunning its node limit) is skipped BEFORE
//     burning budget on it, and probed again after a cooldown.
//   * AdmissionController — a token bucket feeding a three-state health
//     machine (healthy / degraded / shedding) with hysteresis, so load
//     shedding turns on early, recovers stepwise, and never flaps.
//
// All three read time through a ClockSource, never std::chrono directly:
// production code injects the steady clock, tests and the deterministic
// simulator inject a ManualClock, which makes every state transition
// reproducible bit-for-bit (the E14 overload grid and the soak harness
// depend on this). CircuitBreaker and AdmissionController are internally
// locked and safe to share across threads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <mutex>
#include <vector>

#include "support/metrics.h"

namespace confcall::support {

/// A monotonic nanosecond clock, injectable for determinism.
class ClockSource {
 public:
  virtual ~ClockSource() = default;
  [[nodiscard]] virtual std::uint64_t now_ns() const = 0;
};

/// std::chrono::steady_clock behind the ClockSource interface.
class SteadyClockSource final : public ClockSource {
 public:
  [[nodiscard]] std::uint64_t now_ns() const override;
  /// A process-wide instance, for call sites that just want "real time".
  static const SteadyClockSource& shared();
};

/// A hand-advanced clock for tests and the discrete-time simulator
/// (where one paging round or simulation step costs a fixed number of
/// virtual nanoseconds). Never goes backwards: advance() only.
class ManualClock final : public ClockSource {
 public:
  explicit ManualClock(std::uint64_t start_ns = 0) noexcept
      : now_ns_(start_ns) {}
  [[nodiscard]] std::uint64_t now_ns() const override { return now_ns_; }
  void advance(std::uint64_t delta_ns) noexcept { now_ns_ += delta_ns; }

 private:
  std::uint64_t now_ns_;
};

/// An absolute expiry on a ClockSource's timeline. Value type: propagate
/// it by copy through a call chain and every layer sees the same expiry
/// (the whole point — per-layer relative timeouts silently add up to more
/// than the caller offered). The default-constructed Deadline is
/// unbounded, so deadline-free callers pay nothing.
class Deadline {
 public:
  static constexpr std::uint64_t kUnbounded =
      std::numeric_limits<std::uint64_t>::max();

  constexpr Deadline() noexcept = default;  ///< unbounded

  static constexpr Deadline unbounded() noexcept { return Deadline{}; }

  /// Expires at the given absolute timestamp.
  static constexpr Deadline at(std::uint64_t expiry_ns) noexcept {
    Deadline deadline;
    deadline.expiry_ns_ = expiry_ns;
    return deadline;
  }

  /// Expires `budget_ns` from the clock's current now (saturating).
  static Deadline after(std::uint64_t budget_ns, const ClockSource& clock);

  [[nodiscard]] constexpr bool is_unbounded() const noexcept {
    return expiry_ns_ == kUnbounded;
  }
  [[nodiscard]] constexpr std::uint64_t expiry_ns() const noexcept {
    return expiry_ns_;
  }
  [[nodiscard]] bool expired(const ClockSource& clock) const {
    return clock.now_ns() >= expiry_ns_;
  }
  /// Nanoseconds left (0 when expired, kUnbounded when unbounded).
  [[nodiscard]] std::uint64_t remaining_ns(const ClockSource& clock) const;

  /// The tighter of this deadline and `budget_ns` from now — the
  /// propagation helper for layers that add their own local limit.
  [[nodiscard]] Deadline tightened(std::uint64_t budget_ns,
                                   const ClockSource& clock) const;

 private:
  std::uint64_t expiry_ns_ = kUnbounded;
};

/// CircuitBreaker tuning. Defaults suit a per-call dependency probed a
/// few times per second.
struct CircuitBreakerOptions {
  /// Sliding window of recorded outcomes the failure rate is computed
  /// over (>= 1).
  std::size_t window = 8;
  /// Outcomes required in the window before the breaker may trip (>= 1,
  /// <= window) — a single early failure must not open a cold breaker.
  std::size_t min_samples = 4;
  /// Trip when failures / outcomes >= this fraction, in (0, 1].
  double failure_threshold = 0.5;
  /// How long an open breaker rejects before probing again (>= 1 ns).
  std::uint64_t cooldown_ns = 100'000'000;  // 100 ms

  /// Throws std::invalid_argument with a specific message per violation.
  void validate() const;
};

/// closed -> open -> half-open failure isolator.
///
/// Legal state transitions (the soak harness asserts exactly these):
///   closed    -> open       window full enough and failure rate tripped
///   open      -> half-open  cooldown elapsed (observed lazily)
///   half-open -> closed     the single probe call succeeded
///   half-open -> open       the probe failed (cooldown restarts)
///
/// Callers wrap a dependency as:
///   if (!breaker.allow()) { /* skip, use fallback */ }
///   else { ok = call(); ok ? breaker.record_success()
///                          : breaker.record_failure(); }
/// Internally locked; allow/record may be called from any thread.
class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  /// The clock must outlive the breaker. Throws std::invalid_argument on
  /// bad options (see CircuitBreakerOptions::validate).
  explicit CircuitBreaker(
      CircuitBreakerOptions options = {},
      const ClockSource& clock = SteadyClockSource::shared());

  /// May the protected call proceed right now? While open this counts a
  /// rejection and returns false until the cooldown elapses; then the
  /// breaker turns half-open and exactly one caller gets a probe slot
  /// until its outcome is recorded.
  [[nodiscard]] bool allow();

  /// Report the outcome of an allowed call. Unpaired records (recording
  /// without a prior allow) are legal and treated as window samples.
  void record_success();
  void record_failure();

  /// The observable state (an elapsed cooldown reads as half-open even
  /// before the next allow() mutates toward the probe).
  [[nodiscard]] State state() const;

  [[nodiscard]] std::uint64_t trips() const;       ///< closed/half-open -> open
  [[nodiscard]] std::uint64_t rejections() const;  ///< allow() == false
  [[nodiscard]] const CircuitBreakerOptions& options() const noexcept {
    return options_;
  }

  /// Mirrors every future trip into `trips` (a registry counter handle,
  /// typically labelled with the guarded tier). The internal trips()
  /// counter keeps counting regardless; the handle is an additional,
  /// registry-visible sink.
  void bind_metrics(Counter trips);

  /// Replaces the open-state cooldown for every FUTURE trip (an already
  /// running cooldown keeps its original expiry). The SLO controller's
  /// actuator: it derives the cooldown from the observed recovery-time
  /// EWMA instead of the static option. Throws std::invalid_argument on
  /// zero.
  void set_cooldown_ns(std::uint64_t cooldown_ns);

  /// Completed recoveries (open/half-open -> closed) and how long the
  /// most recent one took, measured from the FIRST trip of the episode
  /// to the probe success that closed the breaker (re-trips of failed
  /// probes extend the same episode). last_recovery_ns() is 0 until the
  /// first recovery completes.
  [[nodiscard]] std::uint64_t recoveries() const;
  [[nodiscard]] std::uint64_t last_recovery_ns() const;

  static const char* state_name(State state) noexcept;

 private:
  void trip_locked();
  [[nodiscard]] State state_locked() const;

  CircuitBreakerOptions options_;
  const ClockSource* clock_;
  mutable std::mutex mutex_;
  State state_ = State::kClosed;
  std::uint64_t open_until_ns_ = 0;
  bool probe_in_flight_ = false;
  std::vector<std::uint8_t> outcomes_;  // ring: 1 = failure
  std::size_t next_slot_ = 0;
  std::size_t samples_ = 0;
  std::size_t failures_in_window_ = 0;
  std::uint64_t trips_ = 0;
  std::uint64_t rejections_ = 0;
  std::uint64_t tripped_at_ns_ = 0;  ///< first trip of the open episode
  std::uint64_t recoveries_ = 0;
  std::uint64_t last_recovery_ns_ = 0;
  Counter trips_metric_;
};

/// Service health as seen by admission control.
enum class Health { kHealthy, kDegraded, kShedding };

[[nodiscard]] const char* health_name(Health health) noexcept;

/// AdmissionController tuning. The bucket is measured in abstract tokens
/// (callers choose the cost of a request — e.g. one token per callee, so
/// large conferences weigh more). Health is driven by the bucket's fill
/// fraction with hysteresis:
///
///   fill < shed_below       ->  kShedding   (reject new work)
///   fill < degraded_below   ->  kDegraded   (admit, but plan cheap)
///   recovery is stepwise: shedding needs fill > recover_above to become
///   degraded, degraded needs fill > healthy_above to become healthy —
///   never shedding -> healthy in one move, and the gaps between the
///   down- and up-thresholds keep the state from flapping at a boundary.
struct AdmissionOptions {
  double bucket_capacity = 64.0;  ///< max tokens (burst allowance), > 0
  double refill_per_sec = 64.0;   ///< sustained token rate, >= 0
  double degraded_below = 0.5;
  double healthy_above = 0.75;
  double shed_below = 0.15;
  double recover_above = 0.35;

  /// Throws std::invalid_argument unless
  /// 0 < shed_below < recover_above <= degraded_below < healthy_above <= 1
  /// and capacity/refill are sane.
  void validate() const;
};

/// Token-bucket admission control with a three-state health machine.
/// Deterministic given the injected clock and the admit() sequence.
/// Internally locked; admit() may be called from any thread.
class AdmissionController {
 public:
  enum class Decision {
    kAdmit,          ///< healthy: full-quality service
    kAdmitDegraded,  ///< degraded: serve, but with the cheap plan tier
    kShed,           ///< shedding (or bucket empty): reject the request
  };

  /// The clock must outlive the controller; the bucket starts full.
  /// Throws std::invalid_argument on bad options.
  explicit AdmissionController(
      AdmissionOptions options = {},
      const ClockSource& clock = SteadyClockSource::shared());

  /// Decide one arriving request costing `cost` tokens (> 0). Refills
  /// the bucket for the elapsed clock time, steps the health machine,
  /// and consumes the cost unless the request is shed. A request the
  /// bucket cannot cover is shed even before health reaches kShedding.
  [[nodiscard]] Decision admit(double cost = 1.0);

  /// Health after refilling for the time elapsed since the last call.
  [[nodiscard]] Health health();

  [[nodiscard]] double tokens();  ///< current fill, after refill

  [[nodiscard]] std::uint64_t admitted() const;
  [[nodiscard]] std::uint64_t admitted_degraded() const;
  [[nodiscard]] std::uint64_t shed() const;
  /// Health-state changes since construction (flap metric).
  [[nodiscard]] std::uint64_t health_transitions() const;

  /// Registers the controller's metric family on `registry` and mirrors
  /// every future decision into it: confcall_admission_admitted_total /
  /// _degraded_total / _shed_total, health transitions labelled by the
  /// state entered (confcall_admission_health_transitions_total{to=...}),
  /// and the bucket fill as the confcall_admission_tokens gauge (updated
  /// on every admit()). The registry must outlive the controller.
  void bind_metrics(MetricRegistry& registry);

  /// A consistent copy of the current tuning (the SLO controller's
  /// actuators mutate it at runtime, so options are state, not config).
  [[nodiscard]] AdmissionOptions options() const;

  /// Replaces the sustained token rate (>= 0). The bucket is refilled at
  /// the OLD rate for the time already elapsed first, so a rate change
  /// never retroactively rewrites history. Throws std::invalid_argument
  /// on a negative rate.
  void set_refill_per_sec(double refill_per_sec);

  /// Moves the degrade threshold (the SLO controller's quality actuator:
  /// raise it to degrade earlier under load, lower it to restore full
  /// quality). Throws std::invalid_argument unless the hysteresis chain
  /// recover_above <= degraded_below < healthy_above stays intact; the
  /// health state is re-stepped against the new threshold immediately.
  void set_degraded_below(double degraded_below);

 private:
  void refill_locked();
  void step_health_locked();

  AdmissionOptions options_;
  const ClockSource* clock_;
  mutable std::mutex mutex_;
  double tokens_;
  std::uint64_t last_refill_ns_;
  Health health_ = Health::kHealthy;
  std::uint64_t admitted_ = 0;
  std::uint64_t admitted_degraded_ = 0;
  std::uint64_t shed_ = 0;
  std::uint64_t health_transitions_ = 0;
  Counter admitted_metric_;
  Counter admitted_degraded_metric_;
  Counter shed_metric_;
  Counter transition_metric_[3];  // indexed by the Health entered
  Gauge tokens_metric_;
};

}  // namespace confcall::support
