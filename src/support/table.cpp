#include "support/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace confcall::support {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)),
      aligns_(headers_.size(), Align::kRight) {
  if (headers_.empty()) {
    throw std::invalid_argument("TextTable: no columns");
  }
}

void TextTable::set_align(std::size_t column, Align align) {
  if (column >= aligns_.size()) {
    throw std::invalid_argument("TextTable: column index out of range");
  }
  aligns_[column] = align;
}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("TextTable: wrong cell count");
  }
  rows_.push_back(std::move(cells));
}

void TextTable::add_separator() { rows_.push_back({kSeparatorMarker}); }

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    widths[i] = headers_[i].size();
  }
  for (const auto& row : rows_) {
    if (row.size() == 1 && row[0] == kSeparatorMarker) continue;
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }

  const auto emit_cell = [&](std::ostringstream& os, const std::string& text,
                             std::size_t i) {
    const std::size_t pad = widths[i] - text.size();
    if (aligns_[i] == Align::kRight) os << std::string(pad, ' ') << text;
    else os << text << std::string(pad, ' ');
  };
  const auto emit_rule = [&](std::ostringstream& os) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      if (i != 0) os << "-+-";
      os << std::string(widths[i], '-');
    }
    os << '\n';
  };

  std::ostringstream os;
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    if (i != 0) os << " | ";
    emit_cell(os, headers_[i], i);
  }
  os << '\n';
  emit_rule(os);
  for (const auto& row : rows_) {
    if (row.size() == 1 && row[0] == kSeparatorMarker) {
      emit_rule(os);
      continue;
    }
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i != 0) os << " | ";
      emit_cell(os, row[i], i);
    }
    os << '\n';
  }
  return os.str();
}

std::string TextTable::to_csv() const {
  const auto emit_cell = [](std::ostringstream& os, const std::string& text) {
    if (text.find_first_of(",\"\n") == std::string::npos) {
      os << text;
      return;
    }
    os << '"';
    for (const char ch : text) {
      if (ch == '"') os << '"';
      os << ch;
    }
    os << '"';
  };
  std::ostringstream os;
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    if (i != 0) os << ',';
    emit_cell(os, headers_[i]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    if (row.size() == 1 && row[0] == kSeparatorMarker) continue;
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i != 0) os << ',';
      emit_cell(os, row[i]);
    }
    os << '\n';
  }
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const TextTable& table) {
  return os << table.to_string();
}

std::string TextTable::fmt(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", digits, value);
  return buffer;
}

std::string TextTable::fmt(std::size_t value) { return std::to_string(value); }
std::string TextTable::fmt(long long value) { return std::to_string(value); }

}  // namespace confcall::support
