#include "support/json.h"

#include <charconv>
#include <cstdint>

namespace confcall::support {

namespace {

/// Appends a Unicode code point to `out` as UTF-8. Input is already
/// range-checked by the \u parser (<= 0x10FFFF, no lone surrogates).
void append_utf8(std::string& out, std::uint32_t code_point) {
  if (code_point < 0x80) {
    out.push_back(static_cast<char>(code_point));
  } else if (code_point < 0x800) {
    out.push_back(static_cast<char>(0xC0 | (code_point >> 6)));
    out.push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
  } else if (code_point < 0x10000) {
    out.push_back(static_cast<char>(0xE0 | (code_point >> 12)));
    out.push_back(static_cast<char>(0x80 | ((code_point >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
  } else {
    out.push_back(static_cast<char>(0xF0 | (code_point >> 18)));
    out.push_back(static_cast<char>(0x80 | ((code_point >> 12) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | ((code_point >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
  }
}

class Parser {
 public:
  Parser(std::string_view text, std::size_t max_depth)
      : text_(text), max_depth_(max_depth) {}

  JsonValue parse_document() {
    JsonValue value = parse_value(0);
    skip_whitespace();
    if (pos_ != text_.size()) {
      throw JsonError("trailing characters after JSON document", pos_);
    }
    return value;
  }

 private:
  [[nodiscard]] bool at_end() const noexcept { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const noexcept { return text_[pos_]; }

  void skip_whitespace() noexcept {
    while (!at_end()) {
      const char c = peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  [[noreturn]] void fail(const std::string& message) const {
    throw JsonError(message, pos_);
  }

  void expect(char c) {
    if (at_end() || peek() != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  void expect_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) {
      fail("invalid literal");
    }
    pos_ += literal.size();
  }

  JsonValue parse_value(std::size_t depth) {
    if (depth > max_depth_) fail("nesting too deep");
    skip_whitespace();
    if (at_end()) fail("unexpected end of input");
    switch (peek()) {
      case 'n':
        expect_literal("null");
        return JsonValue::make_null();
      case 't':
        expect_literal("true");
        return JsonValue::make_bool(true);
      case 'f':
        expect_literal("false");
        return JsonValue::make_bool(false);
      case '"':
        return JsonValue::make_string(parse_string());
      case '[':
        return parse_array(depth);
      case '{':
        return parse_object(depth);
      default:
        return parse_number();
    }
  }

  JsonValue parse_array(std::size_t depth) {
    expect('[');
    JsonValue::Array items;
    skip_whitespace();
    if (!at_end() && peek() == ']') {
      ++pos_;
      return JsonValue::make_array(std::move(items));
    }
    while (true) {
      items.push_back(parse_value(depth + 1));
      skip_whitespace();
      if (at_end()) fail("unterminated array");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return JsonValue::make_array(std::move(items));
    }
  }

  JsonValue parse_object(std::size_t depth) {
    expect('{');
    JsonValue::Object members;
    skip_whitespace();
    if (!at_end() && peek() == '}') {
      ++pos_;
      return JsonValue::make_object(std::move(members));
    }
    while (true) {
      skip_whitespace();
      if (at_end() || peek() != '"') fail("expected object key string");
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      members.emplace_back(std::move(key), parse_value(depth + 1));
      skip_whitespace();
      if (at_end()) fail("unterminated object");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return JsonValue::make_object(std::move(members));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (at_end()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        --pos_;
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (at_end()) fail("unterminated escape");
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          std::uint32_t code_point = parse_hex4();
          if (code_point >= 0xD800 && code_point <= 0xDBFF) {
            // High surrogate: a \uDC00–\uDFFF low half must follow.
            if (text_.substr(pos_, 2) != "\\u") {
              fail("lone high surrogate");
            }
            pos_ += 2;
            const std::uint32_t low = parse_hex4();
            if (low < 0xDC00 || low > 0xDFFF) fail("invalid low surrogate");
            code_point =
                0x10000 + ((code_point - 0xD800) << 10) + (low - 0xDC00);
          } else if (code_point >= 0xDC00 && code_point <= 0xDFFF) {
            fail("lone low surrogate");
          }
          append_utf8(out, code_point);
          break;
        }
        default:
          --pos_;
          fail("invalid escape character");
      }
    }
  }

  std::uint32_t parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        --pos_;
        fail("invalid hex digit in \\u escape");
      }
    }
    return value;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (!at_end() && peek() == '-') ++pos_;
    // Integer part: 0, or a nonzero digit followed by digits.
    if (at_end() || peek() < '0' || peek() > '9') fail("invalid number");
    if (peek() == '0') {
      ++pos_;
    } else {
      while (!at_end() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (!at_end() && peek() == '.') {
      ++pos_;
      if (at_end() || peek() < '0' || peek() > '9') {
        fail("digit required after decimal point");
      }
      while (!at_end() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (!at_end() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!at_end() && (peek() == '+' || peek() == '-')) ++pos_;
      if (at_end() || peek() < '0' || peek() > '9') {
        fail("digit required in exponent");
      }
      while (!at_end() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    double value = 0.0;
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    const auto [ptr, ec] = std::from_chars(first, last, value);
    if (ec != std::errc{} || ptr != last) {
      // Grammar already validated; only overflow can land here.
      throw JsonError("number out of range", start);
    }
    return JsonValue::make_number(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t max_depth_;
};

[[noreturn]] void type_mismatch(const char* wanted) {
  throw JsonError(std::string("JSON value is not ") + wanted, 0);
}

}  // namespace

JsonValue JsonValue::parse(std::string_view text, std::size_t max_depth) {
  return Parser(text, max_depth).parse_document();
}

bool JsonValue::as_bool() const {
  if (type_ != Type::kBool) type_mismatch("a bool");
  return bool_;
}

double JsonValue::as_number() const {
  if (type_ != Type::kNumber) type_mismatch("a number");
  return number_;
}

const std::string& JsonValue::as_string() const {
  if (type_ != Type::kString) type_mismatch("a string");
  return string_;
}

const JsonValue::Array& JsonValue::as_array() const {
  if (type_ != Type::kArray) type_mismatch("an array");
  return array_;
}

const JsonValue::Object& JsonValue::as_object() const {
  if (type_ != Type::kObject) type_mismatch("an object");
  return object_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type_ != Type::kObject) type_mismatch("an object");
  for (const auto& [name, value] : object_) {
    if (name == key) return &value;
  }
  return nullptr;
}

JsonValue JsonValue::make_bool(bool value) {
  JsonValue v;
  v.type_ = Type::kBool;
  v.bool_ = value;
  return v;
}

JsonValue JsonValue::make_number(double value) {
  JsonValue v;
  v.type_ = Type::kNumber;
  v.number_ = value;
  return v;
}

JsonValue JsonValue::make_string(std::string value) {
  JsonValue v;
  v.type_ = Type::kString;
  v.string_ = std::move(value);
  return v;
}

JsonValue JsonValue::make_array(Array value) {
  JsonValue v;
  v.type_ = Type::kArray;
  v.array_ = std::move(value);
  return v;
}

JsonValue JsonValue::make_object(Object value) {
  JsonValue v;
  v.type_ = Type::kObject;
  v.object_ = std::move(value);
  return v;
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out.push_back(kHex[(c >> 4) & 0xF]);
          out.push_back(kHex[c & 0xF]);
        } else {
          out.push_back(c);
        }
        break;
    }
  }
  return out;
}

}  // namespace confcall::support
