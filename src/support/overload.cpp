#include "support/overload.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>

namespace confcall::support {

std::uint64_t SteadyClockSource::now_ns() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

const SteadyClockSource& SteadyClockSource::shared() {
  static const SteadyClockSource instance;
  return instance;
}

Deadline Deadline::after(std::uint64_t budget_ns, const ClockSource& clock) {
  if (budget_ns == kUnbounded) return unbounded();
  const std::uint64_t now = clock.now_ns();
  const std::uint64_t expiry =
      now > kUnbounded - budget_ns ? kUnbounded : now + budget_ns;
  return at(expiry);
}

std::uint64_t Deadline::remaining_ns(const ClockSource& clock) const {
  if (is_unbounded()) return kUnbounded;
  const std::uint64_t now = clock.now_ns();
  return now >= expiry_ns_ ? 0 : expiry_ns_ - now;
}

Deadline Deadline::tightened(std::uint64_t budget_ns,
                             const ClockSource& clock) const {
  const Deadline local = after(budget_ns, clock);
  return local.expiry_ns_ < expiry_ns_ ? local : *this;
}

void CircuitBreakerOptions::validate() const {
  if (window == 0) {
    throw std::invalid_argument("CircuitBreaker: window must be >= 1");
  }
  if (min_samples == 0 || min_samples > window) {
    throw std::invalid_argument(
        "CircuitBreaker: need 1 <= min_samples <= window");
  }
  if (!(failure_threshold > 0.0 && failure_threshold <= 1.0)) {
    throw std::invalid_argument(
        "CircuitBreaker: failure_threshold must be in (0, 1]");
  }
  if (cooldown_ns == 0) {
    throw std::invalid_argument("CircuitBreaker: cooldown_ns must be >= 1");
  }
}

CircuitBreaker::CircuitBreaker(CircuitBreakerOptions options,
                               const ClockSource& clock)
    : options_(options), clock_(&clock), outcomes_(options.window, 0) {
  options_.validate();
}

const char* CircuitBreaker::state_name(State state) noexcept {
  switch (state) {
    case State::kClosed:
      return "closed";
    case State::kOpen:
      return "open";
    case State::kHalfOpen:
      return "half-open";
  }
  return "?";
}

CircuitBreaker::State CircuitBreaker::state_locked() const {
  if (state_ == State::kOpen && clock_->now_ns() >= open_until_ns_) {
    return State::kHalfOpen;
  }
  return state_;
}

CircuitBreaker::State CircuitBreaker::state() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return state_locked();
}

bool CircuitBreaker::allow() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (state_ == State::kClosed) return true;
  if (state_ == State::kOpen) {
    if (clock_->now_ns() < open_until_ns_) {
      ++rejections_;
      return false;
    }
    state_ = State::kHalfOpen;
    probe_in_flight_ = false;
  }
  // Half-open: exactly one probe at a time; everyone else keeps being
  // rejected until the probe's outcome is recorded.
  if (probe_in_flight_) {
    ++rejections_;
    return false;
  }
  probe_in_flight_ = true;
  return true;
}

void CircuitBreaker::bind_metrics(Counter trips) {
  const std::lock_guard<std::mutex> lock(mutex_);
  trips_metric_ = trips;
}

void CircuitBreaker::trip_locked() {
  // A re-trip (failed half-open probe) extends the SAME recovery
  // episode: the observed recovery time runs from the first trip.
  if (state_ == State::kClosed) tripped_at_ns_ = clock_->now_ns();
  state_ = State::kOpen;
  open_until_ns_ = clock_->now_ns() + options_.cooldown_ns;
  probe_in_flight_ = false;
  ++trips_;
  trips_metric_.inc();
  // A fresh cooldown deserves a fresh verdict: the window restarts so
  // stale pre-trip failures cannot instantly re-trip a recovering
  // dependency.
  outcomes_.assign(options_.window, 0);
  next_slot_ = 0;
  samples_ = 0;
  failures_in_window_ = 0;
}

void CircuitBreaker::record_success() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (state_ != State::kClosed) {
    // Probe succeeded (or a late success from before the trip — equally
    // good news): close and start clean.
    ++recoveries_;
    last_recovery_ns_ = clock_->now_ns() - tripped_at_ns_;
    state_ = State::kClosed;
    probe_in_flight_ = false;
    outcomes_.assign(options_.window, 0);
    next_slot_ = 0;
    samples_ = 0;
    failures_in_window_ = 0;
    return;
  }
  failures_in_window_ -= outcomes_[next_slot_];
  outcomes_[next_slot_] = 0;
  next_slot_ = (next_slot_ + 1) % options_.window;
  if (samples_ < options_.window) ++samples_;
}

void CircuitBreaker::record_failure() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (state_ != State::kClosed) {
    // The half-open probe failed (an open-state record means the probe
    // was handed out just before the cooldown stamp — same verdict):
    // back to open, cooldown restarts.
    trip_locked();
    return;
  }
  failures_in_window_ -= outcomes_[next_slot_];
  outcomes_[next_slot_] = 1;
  ++failures_in_window_;
  next_slot_ = (next_slot_ + 1) % options_.window;
  if (samples_ < options_.window) ++samples_;
  if (samples_ >= options_.min_samples &&
      static_cast<double>(failures_in_window_) >=
          options_.failure_threshold * static_cast<double>(samples_)) {
    trip_locked();
  }
}

std::uint64_t CircuitBreaker::trips() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return trips_;
}

std::uint64_t CircuitBreaker::rejections() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return rejections_;
}

void CircuitBreaker::set_cooldown_ns(std::uint64_t cooldown_ns) {
  if (cooldown_ns == 0) {
    throw std::invalid_argument("CircuitBreaker: cooldown_ns must be >= 1");
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  options_.cooldown_ns = cooldown_ns;
}

std::uint64_t CircuitBreaker::recoveries() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return recoveries_;
}

std::uint64_t CircuitBreaker::last_recovery_ns() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return last_recovery_ns_;
}

const char* health_name(Health health) noexcept {
  switch (health) {
    case Health::kHealthy:
      return "healthy";
    case Health::kDegraded:
      return "degraded";
    case Health::kShedding:
      return "shedding";
  }
  return "?";
}

void AdmissionOptions::validate() const {
  if (!(bucket_capacity > 0.0)) {
    throw std::invalid_argument(
        "AdmissionController: bucket_capacity must be > 0");
  }
  if (!(refill_per_sec >= 0.0)) {
    throw std::invalid_argument(
        "AdmissionController: refill_per_sec must be >= 0");
  }
  if (!(shed_below > 0.0 && shed_below < recover_above &&
        recover_above <= degraded_below &&
        degraded_below < healthy_above && healthy_above <= 1.0)) {
    throw std::invalid_argument(
        "AdmissionController: need 0 < shed_below < recover_above <= "
        "degraded_below < healthy_above <= 1");
  }
}

AdmissionController::AdmissionController(AdmissionOptions options,
                                         const ClockSource& clock)
    : options_(options),
      clock_(&clock),
      tokens_(options.bucket_capacity),
      last_refill_ns_(clock.now_ns()) {
  options_.validate();
}

void AdmissionController::refill_locked() {
  const std::uint64_t now = clock_->now_ns();
  if (now > last_refill_ns_) {
    const double elapsed_sec =
        static_cast<double>(now - last_refill_ns_) * 1e-9;
    tokens_ = std::min(options_.bucket_capacity,
                       tokens_ + elapsed_sec * options_.refill_per_sec);
  }
  last_refill_ns_ = now;
  // Keep the gauge honest on every refill path, not only admit():
  // the SLO controller's setters refill too, and a stale gauge would
  // desynchronize the scrape from tokens().
  tokens_metric_.set(tokens_);
}

void AdmissionController::step_health_locked() {
  const double fill = tokens_ / options_.bucket_capacity;
  Health next = health_;
  switch (health_) {
    case Health::kHealthy:
      if (fill < options_.shed_below) {
        next = Health::kShedding;
      } else if (fill < options_.degraded_below) {
        next = Health::kDegraded;
      }
      break;
    case Health::kDegraded:
      if (fill < options_.shed_below) {
        next = Health::kShedding;
      } else if (fill > options_.healthy_above) {
        next = Health::kHealthy;
      }
      break;
    case Health::kShedding:
      // Stepwise recovery only: shedding can never jump straight back to
      // healthy, no matter how full the bucket refilled.
      if (fill > options_.recover_above) {
        next = Health::kDegraded;
      }
      break;
  }
  if (next != health_) {
    health_ = next;
    ++health_transitions_;
    transition_metric_[static_cast<std::size_t>(next)].inc();
  }
}

void AdmissionController::bind_metrics(MetricRegistry& registry) {
  const std::lock_guard<std::mutex> lock(mutex_);
  admitted_metric_ = registry.counter(
      "confcall_admission_admitted_total",
      "Arrivals admitted at full quality by the token bucket");
  admitted_degraded_metric_ = registry.counter(
      "confcall_admission_degraded_total",
      "Arrivals admitted under degraded health (cheap plan tier)");
  shed_metric_ = registry.counter(
      "confcall_admission_shed_total",
      "Arrivals rejected by admission control (shedding or empty bucket)");
  const Health states[] = {Health::kHealthy, Health::kDegraded,
                           Health::kShedding};
  for (const Health state : states) {
    transition_metric_[static_cast<std::size_t>(state)] = registry.counter(
        "confcall_admission_health_transitions_total",
        "Health-machine transitions, labelled by the state entered",
        {{"to", health_name(state)}});
  }
  tokens_metric_ = registry.gauge(
      "confcall_admission_tokens",
      "Token-bucket fill after the most recent admit()");
  tokens_metric_.set(tokens_);
}

AdmissionController::Decision AdmissionController::admit(double cost) {
  if (!(cost > 0.0)) {
    throw std::invalid_argument("AdmissionController: cost must be > 0");
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  refill_locked();
  step_health_locked();
  if (health_ == Health::kShedding || tokens_ < cost) {
    ++shed_;
    shed_metric_.inc();
    tokens_metric_.set(tokens_);
    return Decision::kShed;
  }
  tokens_ -= cost;
  tokens_metric_.set(tokens_);
  if (health_ == Health::kDegraded) {
    ++admitted_degraded_;
    admitted_degraded_metric_.inc();
    return Decision::kAdmitDegraded;
  }
  ++admitted_;
  admitted_metric_.inc();
  return Decision::kAdmit;
}

AdmissionOptions AdmissionController::options() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return options_;
}

void AdmissionController::set_refill_per_sec(double refill_per_sec) {
  if (!(refill_per_sec >= 0.0)) {
    throw std::invalid_argument(
        "AdmissionController: refill_per_sec must be >= 0");
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  // Settle the elapsed time at the old rate before the new one applies.
  refill_locked();
  options_.refill_per_sec = refill_per_sec;
}

void AdmissionController::set_degraded_below(double degraded_below) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!(options_.recover_above <= degraded_below &&
        degraded_below < options_.healthy_above)) {
    throw std::invalid_argument(
        "AdmissionController: set_degraded_below needs recover_above <= "
        "degraded_below < healthy_above");
  }
  options_.degraded_below = degraded_below;
  // Re-judge the current fill against the moved threshold right away so
  // the next admit() already sees the controller's intent.
  refill_locked();
  step_health_locked();
}

Health AdmissionController::health() {
  const std::lock_guard<std::mutex> lock(mutex_);
  refill_locked();
  step_health_locked();
  return health_;
}

double AdmissionController::tokens() {
  const std::lock_guard<std::mutex> lock(mutex_);
  refill_locked();
  return tokens_;
}

std::uint64_t AdmissionController::admitted() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return admitted_;
}

std::uint64_t AdmissionController::admitted_degraded() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return admitted_degraded_;
}

std::uint64_t AdmissionController::shed() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return shed_;
}

std::uint64_t AdmissionController::health_transitions() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return health_transitions_;
}

}  // namespace confcall::support
