#include "support/metrics.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <functional>
#include <iomanip>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace confcall::support {
namespace {

bool valid_identifier(const std::string& s) {
  if (s.empty()) return false;
  const auto head = static_cast<unsigned char>(s.front());
  if (!(std::isalpha(head) != 0 || s.front() == '_')) return false;
  return std::all_of(s.begin(), s.end(), [](char c) {
    const auto u = static_cast<unsigned char>(c);
    return std::isalnum(u) != 0 || c == '_';
  });
}

void validate_identity(const std::string& name, const MetricLabels& labels) {
  if (!valid_identifier(name)) {
    throw std::invalid_argument("metric name '" + name +
                                "' must match [a-zA-Z_][a-zA-Z0-9_]*");
  }
  for (const auto& [key, value] : labels) {
    (void)value;
    if (!valid_identifier(key)) {
      throw std::invalid_argument("label name '" + key + "' on metric '" +
                                  name +
                                  "' must match [a-zA-Z_][a-zA-Z0-9_]*");
    }
  }
}

MetricLabels sorted_labels(MetricLabels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

std::string escape_label_value(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

// The exposition format's HELP escaping: backslash and newline only
// (label VALUES additionally escape the double quote — see
// escape_label_value above; both run before anything reaches a scraper,
// which the /metrics endpoint now makes externally visible).
std::string escape_help(const std::string& help) {
  std::string out;
  out.reserve(help.size());
  for (char c : help) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string metric_key(const std::string& name, const MetricLabels& labels) {
  if (labels.empty()) return name;
  std::string key = name;
  key += '{';
  bool first = true;
  for (const auto& [label, value] : labels) {
    if (!first) key += ',';
    first = false;
    key += label;
    key += "=\"";
    key += escape_label_value(value);
    key += '"';
  }
  key += '}';
  return key;
}

// JSON requires shortest-round-trip doubles; %.17g is the portable
// sufficient precision and keeps exports bit-stable for the E15 gate.
std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  std::ostringstream os;
  os << std::setprecision(17) << v;
  return os.str();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::ostringstream os;
          os << "\\u" << std::hex << std::setw(4) << std::setfill('0')
             << static_cast<int>(static_cast<unsigned char>(c));
          out += os.str();
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string prom_number(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  std::ostringstream os;
  os << std::setprecision(17) << v;
  return os.str();
}

// 16-hex-digit zero-padded span id — the same rendering /traces uses,
// so an exemplar's trace_id greps straight into the trace export.
std::string trace_id_hex(std::uint64_t id) {
  std::ostringstream os;
  os << std::hex << std::setw(16) << std::setfill('0') << id;
  return os.str();
}

// Exemplar fold for merges: first operand wins when both buckets carry
// one (deterministic given the merge order, matching the documented
// floating-point-sum contract). Either side may be entirely empty —
// histograms that were never annotated snapshot without exemplars.
void fold_exemplars(HistogramSnapshot& mine, const HistogramSnapshot& theirs) {
  if (theirs.exemplars.empty()) return;
  if (mine.exemplars.empty()) {
    mine.exemplars = theirs.exemplars;
    return;
  }
  for (std::size_t i = 0; i < mine.exemplars.size(); ++i) {
    if (!mine.exemplars[i].valid()) mine.exemplars[i] = theirs.exemplars[i];
  }
}

}  // namespace

const char* metric_type_name(MetricType type) noexcept {
  switch (type) {
    case MetricType::kCounter: return "counter";
    case MetricType::kGauge: return "gauge";
    case MetricType::kHistogram: return "histogram";
  }
  return "unknown";
}

HistogramSpec HistogramSpec::exponential(double start, double factor,
                                         std::size_t count) {
  if (!(start > 0.0) || !(factor > 1.0) || count == 0) {
    throw std::invalid_argument(
        "HistogramSpec::exponential requires start > 0, factor > 1, "
        "count >= 1");
  }
  HistogramSpec spec;
  spec.upper_bounds.reserve(count);
  double bound = start;
  for (std::size_t i = 0; i < count; ++i) {
    spec.upper_bounds.push_back(bound);
    bound *= factor;
  }
  spec.validate();
  return spec;
}

HistogramSpec HistogramSpec::integers(std::size_t max_value) {
  HistogramSpec spec;
  spec.upper_bounds.reserve(max_value + 1);
  for (std::size_t v = 0; v <= max_value; ++v) {
    spec.upper_bounds.push_back(static_cast<double>(v));
  }
  spec.validate();
  return spec;
}

void HistogramSpec::validate() const {
  if (upper_bounds.empty()) {
    throw std::invalid_argument("HistogramSpec needs at least one bound");
  }
  for (std::size_t i = 0; i < upper_bounds.size(); ++i) {
    if (!std::isfinite(upper_bounds[i])) {
      throw std::invalid_argument("HistogramSpec bounds must be finite");
    }
    if (i > 0 && !(upper_bounds[i] > upper_bounds[i - 1])) {
      throw std::invalid_argument(
          "HistogramSpec bounds must be strictly increasing");
    }
  }
}

namespace detail {
HistogramCell::HistogramCell(HistogramSpec spec_in)
    : spec(std::move(spec_in)),
      counts(spec.upper_bounds.size() + 1),
      exemplars(spec.upper_bounds.size() + 1) {}
}  // namespace detail

void Histogram::observe(double value) const noexcept {
  if (cell_ == nullptr) return;
  const auto& bounds = cell_->spec.upper_bounds;
  // First bound >= value; past-the-end means the overflow bucket.
  const auto it = std::lower_bound(bounds.begin(), bounds.end(), value);
  const auto index = static_cast<std::size_t>(it - bounds.begin());
  cell_->counts[index].fetch_add(1, std::memory_order_relaxed);
  cell_->sum.fetch_add(value, std::memory_order_relaxed);
}

void Histogram::annotate(double value, std::uint64_t trace_id) const noexcept {
  if (cell_ == nullptr || trace_id == 0) return;
  const auto& bounds = cell_->spec.upper_bounds;
  const auto it = std::lower_bound(bounds.begin(), bounds.end(), value);
  const auto index = static_cast<std::size_t>(it - bounds.begin());
  std::lock_guard<std::mutex> lock(cell_->exemplar_mutex);
  cell_->exemplars[index] = Exemplar{value, trace_id};
}

double HistogramSnapshot::quantile(double p) const noexcept {
  std::uint64_t total = 0;
  for (std::uint64_t c : counts) total += c;
  if (total == 0 || upper_bounds.empty()) return 0.0;
  p = std::min(std::max(p, 0.0), 1.0);
  // Same rank rounding as cellular::SimReport::rounds_percentile, so the
  // two percentile sources agree on integers() buckets.
  const auto target = static_cast<std::uint64_t>(
      p * static_cast<double>(total) + 0.5);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    seen += counts[i];
    if (seen >= target) {
      return i < upper_bounds.size() ? upper_bounds[i] : upper_bounds.back();
    }
  }
  return upper_bounds.back();
}

std::string MetricSnapshot::key() const { return metric_key(name, labels); }

void RegistrySnapshot::merge(const RegistrySnapshot& other) {
  for (const auto& theirs : other.metrics) {
    const std::string key = theirs.key();
    auto it = std::lower_bound(
        metrics.begin(), metrics.end(), key,
        [](const MetricSnapshot& m, const std::string& k) {
          return m.key() < k;
        });
    if (it == metrics.end() || it->key() != key) {
      metrics.insert(it, theirs);
      continue;
    }
    if (it->type != theirs.type) {
      throw std::invalid_argument("RegistrySnapshot::merge: metric '" + key +
                                  "' has mismatched types");
    }
    switch (theirs.type) {
      case MetricType::kCounter:
        it->counter_value += theirs.counter_value;
        break;
      case MetricType::kGauge:
        it->gauge_value += theirs.gauge_value;
        break;
      case MetricType::kHistogram: {
        auto& mine = it->histogram;
        if (mine.upper_bounds != theirs.histogram.upper_bounds) {
          throw std::invalid_argument("RegistrySnapshot::merge: histogram '" +
                                      key + "' has mismatched bucket bounds");
        }
        for (std::size_t i = 0; i < mine.counts.size(); ++i) {
          mine.counts[i] += theirs.histogram.counts[i];
        }
        mine.count += theirs.histogram.count;
        mine.sum += theirs.histogram.sum;
        fold_exemplars(mine, theirs.histogram);
        break;
      }
    }
  }
}

RegistrySnapshot RegistrySnapshot::delta(const RegistrySnapshot& prev) const {
  RegistrySnapshot out = *this;
  std::size_t prev_matched = 0;
  for (MetricSnapshot& mine : out.metrics) {
    const MetricSnapshot* theirs = prev.find(mine.name, mine.labels);
    if (theirs == nullptr) continue;  // series appeared during the window
    ++prev_matched;
    if (theirs->type != mine.type) {
      throw std::invalid_argument("RegistrySnapshot::delta: metric '" +
                                  mine.key() + "' has mismatched types");
    }
    switch (mine.type) {
      case MetricType::kCounter:
        if (theirs->counter_value > mine.counter_value) {
          throw std::invalid_argument(
              "RegistrySnapshot::delta: counter '" + mine.key() +
              "' went backwards (was the registry reset?)");
        }
        mine.counter_value -= theirs->counter_value;
        break;
      case MetricType::kGauge:
        break;  // levels, not rates: the delta reports the current value
      case MetricType::kHistogram: {
        if (mine.histogram.upper_bounds != theirs->histogram.upper_bounds) {
          throw std::invalid_argument("RegistrySnapshot::delta: histogram '" +
                                      mine.key() +
                                      "' has mismatched bucket bounds");
        }
        if (theirs->histogram.count > mine.histogram.count) {
          throw std::invalid_argument(
              "RegistrySnapshot::delta: histogram '" + mine.key() +
              "' went backwards (was the registry reset?)");
        }
        for (std::size_t i = 0; i < mine.histogram.counts.size(); ++i) {
          if (theirs->histogram.counts[i] > mine.histogram.counts[i]) {
            throw std::invalid_argument(
                "RegistrySnapshot::delta: histogram '" + mine.key() +
                "' went backwards (was the registry reset?)");
          }
          mine.histogram.counts[i] -= theirs->histogram.counts[i];
        }
        mine.histogram.count -= theirs->histogram.count;
        mine.histogram.sum -= theirs->histogram.sum;
        break;
      }
    }
  }
  // Every key of prev must still exist here: the registry never drops a
  // series, so a leftover means the snapshots are from different
  // registries.
  if (prev_matched != prev.metrics.size()) {
    for (const MetricSnapshot& theirs : prev.metrics) {
      if (find(theirs.name, theirs.labels) == nullptr) {
        throw std::invalid_argument(
            "RegistrySnapshot::delta: metric '" + theirs.key() +
            "' from the previous snapshot is missing here (snapshots of "
            "different registries?)");
      }
    }
  }
  return out;
}

RegistrySnapshot RegistrySnapshot::erase_labels(
    const std::vector<std::string>& keys) const {
  RegistrySnapshot out;
  for (const MetricSnapshot& metric : metrics) {
    RegistrySnapshot one;
    one.metrics.push_back(metric);
    MetricLabels& labels = one.metrics.front().labels;
    labels.erase(std::remove_if(labels.begin(), labels.end(),
                                [&keys](const auto& label) {
                                  return std::find(keys.begin(), keys.end(),
                                                   label.first) != keys.end();
                                }),
                 labels.end());
    // merge() supplies the collision semantics: series that collapse
    // onto the same key after the erasure fold exactly like cross-thread
    // replication merges (and throw on type/bucket disagreements).
    out.merge(one);
  }
  return out;
}

std::optional<MetricSnapshot> RegistrySnapshot::sum_by(
    std::string_view name) const {
  RegistrySnapshot acc;
  for (const MetricSnapshot& metric : metrics) {
    if (metric.name != name) continue;
    RegistrySnapshot one;
    one.metrics.push_back(metric);
    one.metrics.front().labels.clear();
    acc.merge(one);
  }
  if (acc.metrics.empty()) return std::nullopt;
  return std::move(acc.metrics.front());
}

const MetricSnapshot* RegistrySnapshot::find(
    std::string_view name, const MetricLabels& labels) const noexcept {
  for (const auto& metric : metrics) {
    if (metric.name == name && metric.labels == labels) return &metric;
  }
  return nullptr;
}

MetricRegistry::Shard& MetricRegistry::shard_for(
    const std::string& name) noexcept {
  return shards_[std::hash<std::string>{}(name) % kNumShards];
}

MetricRegistry::Entry& MetricRegistry::find_or_create(
    Shard& shard, MetricType type, const std::string& name,
    const MetricLabels& labels, const std::string& help,
    const HistogramSpec* spec) {
  const std::string key = metric_key(name, labels);
  auto it = shard.by_key.find(key);
  if (it != shard.by_key.end()) {
    Entry& entry = it->second;
    if (entry.type != type) {
      throw std::invalid_argument(
          "metric '" + key + "' already registered as " +
          metric_type_name(entry.type) + ", requested " +
          metric_type_name(type));
    }
    if (type == MetricType::kHistogram &&
        entry.histogram->spec.upper_bounds != spec->upper_bounds) {
      throw std::invalid_argument("histogram '" + key +
                                  "' re-registered with different buckets");
    }
    return entry;
  }
  Entry entry;
  entry.type = type;
  entry.name = name;
  entry.labels = labels;
  entry.help = help;
  switch (type) {
    case MetricType::kCounter:
      entry.counter = &shard.counters.emplace_back();
      break;
    case MetricType::kGauge:
      entry.gauge = &shard.gauges.emplace_back();
      break;
    case MetricType::kHistogram:
      entry.histogram = &shard.histograms.emplace_back(*spec);
      break;
  }
  return shard.by_key.emplace(key, std::move(entry)).first->second;
}

Counter MetricRegistry::counter(const std::string& name,
                                const std::string& help,
                                const MetricLabels& labels) {
  validate_identity(name, labels);
  const MetricLabels canonical = sorted_labels(labels);
  Shard& shard = shard_for(name);
  std::lock_guard<std::mutex> lock(shard.mutex);
  return Counter(find_or_create(shard, MetricType::kCounter, name, canonical,
                                help, nullptr)
                     .counter);
}

Gauge MetricRegistry::gauge(const std::string& name, const std::string& help,
                            const MetricLabels& labels) {
  validate_identity(name, labels);
  const MetricLabels canonical = sorted_labels(labels);
  Shard& shard = shard_for(name);
  std::lock_guard<std::mutex> lock(shard.mutex);
  return Gauge(
      find_or_create(shard, MetricType::kGauge, name, canonical, help, nullptr)
          .gauge);
}

Histogram MetricRegistry::histogram(const std::string& name,
                                    const HistogramSpec& spec,
                                    const std::string& help,
                                    const MetricLabels& labels) {
  validate_identity(name, labels);
  spec.validate();
  const MetricLabels canonical = sorted_labels(labels);
  Shard& shard = shard_for(name);
  std::lock_guard<std::mutex> lock(shard.mutex);
  return Histogram(find_or_create(shard, MetricType::kHistogram, name,
                                  canonical, help, &spec)
                       .histogram);
}

RegistrySnapshot MetricRegistry::snapshot() const {
  RegistrySnapshot snapshot;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (const auto& [key, entry] : shard.by_key) {
      (void)key;
      MetricSnapshot metric;
      metric.name = entry.name;
      metric.labels = entry.labels;
      metric.help = entry.help;
      metric.type = entry.type;
      switch (entry.type) {
        case MetricType::kCounter:
          metric.counter_value =
              entry.counter->value.load(std::memory_order_relaxed);
          break;
        case MetricType::kGauge:
          metric.gauge_value =
              entry.gauge->value.load(std::memory_order_relaxed);
          break;
        case MetricType::kHistogram: {
          metric.histogram.upper_bounds = entry.histogram->spec.upper_bounds;
          metric.histogram.counts.reserve(entry.histogram->counts.size());
          for (const auto& bucket : entry.histogram->counts) {
            metric.histogram.counts.push_back(
                bucket.load(std::memory_order_relaxed));
          }
          metric.histogram.count = 0;
          for (const std::uint64_t bucket : metric.histogram.counts) {
            metric.histogram.count += bucket;
          }
          metric.histogram.sum =
              entry.histogram->sum.load(std::memory_order_relaxed);
          {
            std::lock_guard<std::mutex> exemplar_lock(
                entry.histogram->exemplar_mutex);
            const auto& cells = entry.histogram->exemplars;
            // Never-annotated histograms snapshot with an empty exemplar
            // vector, keeping the common path allocation-free.
            if (std::any_of(cells.begin(), cells.end(),
                            [](const Exemplar& e) { return e.valid(); })) {
              metric.histogram.exemplars = cells;
            }
          }
          break;
        }
      }
      snapshot.metrics.push_back(std::move(metric));
    }
  }
  std::sort(snapshot.metrics.begin(), snapshot.metrics.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              return a.key() < b.key();
            });
  return snapshot;
}

std::string to_json(const RegistrySnapshot& snapshot) {
  std::ostringstream os;
  os << "{\n";
  const char* section_names[] = {"counters", "gauges", "histograms"};
  const MetricType section_types[] = {MetricType::kCounter, MetricType::kGauge,
                                      MetricType::kHistogram};
  for (int section = 0; section < 3; ++section) {
    os << "  \"" << section_names[section] << "\": {";
    bool first = true;
    for (const auto& metric : snapshot.metrics) {
      if (metric.type != section_types[section]) continue;
      if (!first) os << ",";
      first = false;
      os << "\n    \"" << json_escape(metric.key()) << "\": ";
      switch (metric.type) {
        case MetricType::kCounter:
          os << metric.counter_value;
          break;
        case MetricType::kGauge:
          os << json_number(metric.gauge_value);
          break;
        case MetricType::kHistogram: {
          const auto& h = metric.histogram;
          os << "{\"count\": " << h.count
             << ", \"sum\": " << json_number(h.sum)
             << ", \"p50\": " << json_number(h.quantile(0.50))
             << ", \"p99\": " << json_number(h.quantile(0.99))
             << ", \"buckets\": [";
          for (std::size_t i = 0; i < h.counts.size(); ++i) {
            if (i > 0) os << ", ";
            os << h.counts[i];
          }
          os << "]}";
          break;
        }
      }
    }
    os << (first ? "}" : "\n  }");
    if (section < 2) os << ",";
    os << "\n";
  }
  os << "}\n";
  return os.str();
}

std::string to_prometheus(const RegistrySnapshot& snapshot) {
  return to_prometheus(snapshot, PrometheusOptions{});
}

std::string to_prometheus(const RegistrySnapshot& snapshot,
                          const PrometheusOptions& options) {
  std::ostringstream os;
  // HELP/TYPE are per metric family (name), emitted once even when many
  // label sets share the name; the sorted snapshot groups them already.
  std::string last_family;
  for (const auto& metric : snapshot.metrics) {
    if (metric.name != last_family) {
      last_family = metric.name;
      if (!metric.help.empty()) {
        os << "# HELP " << metric.name << " " << escape_help(metric.help)
           << "\n";
      }
      os << "# TYPE " << metric.name << " " << metric_type_name(metric.type)
         << "\n";
    }
    switch (metric.type) {
      case MetricType::kCounter:
        os << metric.key() << " " << metric.counter_value << "\n";
        break;
      case MetricType::kGauge:
        os << metric.key() << " " << prom_number(metric.gauge_value) << "\n";
        break;
      case MetricType::kHistogram: {
        const auto& h = metric.histogram;
        std::uint64_t cumulative = 0;
        auto bucket_key = [&metric](const std::string& le) {
          MetricLabels labels = metric.labels;
          labels.emplace_back("le", le);
          std::sort(labels.begin(), labels.end());
          return metric_key(metric.name + "_bucket", labels);
        };
        // OpenMetrics exemplar suffix on _bucket samples only, behind
        // the opt-in: the default exposition must stay byte-identical
        // release over release (the E16 scrape gate).
        auto bucket_exemplar = [&](std::size_t i) {
          if (!options.exemplars || i >= h.exemplars.size() ||
              !h.exemplars[i].valid()) {
            return;
          }
          os << " # {trace_id=\"" << trace_id_hex(h.exemplars[i].trace_id)
             << "\"} " << prom_number(h.exemplars[i].value);
        };
        for (std::size_t i = 0; i < h.upper_bounds.size(); ++i) {
          cumulative += h.counts[i];
          os << bucket_key(prom_number(h.upper_bounds[i])) << " " << cumulative;
          bucket_exemplar(i);
          os << "\n";
        }
        cumulative += h.counts.back();
        os << bucket_key("+Inf") << " " << cumulative;
        bucket_exemplar(h.counts.size() - 1);
        os << "\n";
        os << metric_key(metric.name + "_sum", metric.labels) << " "
           << prom_number(h.sum) << "\n";
        os << metric_key(metric.name + "_count", metric.labels) << " "
           << h.count << "\n";
        break;
      }
    }
  }
  return os.str();
}

}  // namespace confcall::support
