#include "support/thread_pool.h"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

namespace confcall::support {

std::size_t resolve_threads(std::size_t requested) noexcept {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

void ThreadPool::parallel_for(
    std::size_t num_tasks, const std::function<void(std::size_t)>& fn) const {
  if (num_tasks == 0) return;

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  const auto worker = [&] {
    for (;;) {
      const std::size_t task = next.fetch_add(1, std::memory_order_relaxed);
      if (task >= num_tasks) return;
      try {
        fn(task);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        // Keep draining tasks: siblings may be mid-flight anyway, and a
        // deterministic "first error wins" beats a half-run abort.
      }
    }
  };

  // The caller is one of the workers; extra threads only help when there
  // is both capacity (> 1) and enough tasks to share.
  const std::size_t helpers =
      std::min(num_threads_ > 0 ? num_threads_ - 1 : 0, num_tasks - 1);
  std::vector<std::thread> threads;
  threads.reserve(helpers);
  for (std::size_t t = 0; t < helpers; ++t) threads.emplace_back(worker);
  worker();
  for (std::thread& thread : threads) thread.join();

  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace confcall::support
