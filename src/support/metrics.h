// Metrics substrate: a lock-sharded registry of named counters, gauges
// and fixed-bucket histograms, with mergeable snapshots and two
// exporters (JSON for the bench/CI flow, Prometheus text format for
// scrapers).
//
// The stack grew three generations of ad-hoc telemetry — atomic tier
// counters in ResilientPlanner, locked stats in AdmissionController,
// hand-rolled JSON writers in every bench. This header is the shared
// substrate they converge on. Design rules:
//
//   * Handles, not lookups, on the hot path. Registration (name ->
//     handle) takes a shard lock once; after that a Counter::inc is one
//     relaxed fetch_add and a Gauge::set one atomic store. Handles are
//     cheap value types and may be copied freely; a default-constructed
//     handle is UNBOUND and every operation on it is a no-op, so
//     components can hold handles unconditionally and pay nothing until
//     someone binds a registry.
//   * Snapshots are the only read path for aggregate output. snapshot()
//     walks the shards under their locks and returns a RegistrySnapshot
//     sorted by metric key — one consistent cut, instead of N racing
//     getter calls (the bug confcall_plan's printout used to have).
//   * Snapshots merge deterministically. Counter/histogram-bucket merges
//     are integer sums (order-free); gauge and histogram-sum merges are
//     floating-point adds, so callers that need bit-identical aggregates
//     merge in a fixed order (run_simulation_batch merges in replication
//     order — the E15 gate holds merged snapshots bit-identical across
//     thread counts).
//   * Histograms are fixed-bucket. HistogramSpec::exponential gives the
//     log-scale latency buckets; HistogramSpec::integers gives unit
//     buckets whose quantile() agrees EXACTLY with the simulator's
//     rounds_percentile (same rounding, tested) — so percentile-driven
//     tuning can read either source and see the same number.
//
// Metric naming follows the Prometheus conventions: snake_case, a
// `confcall_` prefix, unit suffix (`_ns`, `_cells`, `_rounds`),
// `_total` on counters. Every name emitted by the instrumented
// components is catalogued in docs/OBSERVABILITY.md, and a test diffs
// the runtime registry listing against that catalogue.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace confcall::support {

/// Label set attached to a metric at registration ("tier" -> "greedy").
/// Labels are part of the metric's identity: the same name with
/// different labels is a different time series.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

enum class MetricType { kCounter, kGauge, kHistogram };

[[nodiscard]] const char* metric_type_name(MetricType type) noexcept;

/// Bucket layout of a histogram: strictly increasing upper bounds with
/// Prometheus "le" semantics (bucket i counts observations <= bound[i]),
/// plus an implicit overflow bucket above the last bound.
struct HistogramSpec {
  std::vector<double> upper_bounds;

  /// Log-scale buckets: start, start*factor, start*factor^2, ... —
  /// the default layout for latency in nanoseconds.
  [[nodiscard]] static HistogramSpec exponential(double start, double factor,
                                                 std::size_t count);
  /// Unit buckets 0, 1, 2, ..., max_value. quantile() over these is
  /// exact for integer-valued observations (rounds, retries) and agrees
  /// with cellular::SimReport::rounds_percentile by construction.
  [[nodiscard]] static HistogramSpec integers(std::size_t max_value);

  /// Throws std::invalid_argument unless there is at least one bound and
  /// the bounds are finite and strictly increasing.
  void validate() const;
};

/// OpenMetrics-style exemplar: the trace id of one recent observation
/// that landed in a bucket, bridging a metric percentile to the trace
/// that produced it. trace_id == 0 means "no exemplar recorded" (span
/// ids are never 0 for sampled traces).
struct Exemplar {
  double value = 0.0;
  std::uint64_t trace_id = 0;
  [[nodiscard]] bool valid() const noexcept { return trace_id != 0; }
};

namespace detail {
struct CounterCell {
  std::atomic<std::uint64_t> value{0};
};
struct GaugeCell {
  std::atomic<double> value{0.0};
};
struct HistogramCell {
  explicit HistogramCell(HistogramSpec spec);
  HistogramSpec spec;
  // Lock-free: one relaxed fetch_add per field keeps observe() cheap
  // enough for the locate hot path (the E15 overhead gate). The total
  // count is NOT kept as its own atomic — every observe lands in
  // exactly one bucket, so snapshots derive it by summing the buckets,
  // saving one locked RMW per observe on the hot path. A snapshot
  // mid-observation may see sum/bucket slightly out of step;
  // single-threaded runs (each simulation replication owns its
  // registry) snapshot exactly.
  std::vector<std::atomic<std::uint64_t>> counts;  // +1 overflow bucket
  std::atomic<double> sum{0.0};
  // Exemplars are mutex-guarded, NOT lock-free: annotate() runs only
  // for traced-and-sampled calls (1-in-N of observes), so the lock is
  // off the common path and observe() stays three relaxed adds.
  std::mutex exemplar_mutex;
  std::vector<Exemplar> exemplars;  // parallel to counts, overflow last
};
}  // namespace detail

/// Monotonic counter handle. Unbound (default-constructed) handles
/// no-op; value() on them reads 0.
class Counter {
 public:
  constexpr Counter() noexcept = default;
  void inc(std::uint64_t n = 1) const noexcept {
    if (cell_ != nullptr) cell_->value.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return cell_ == nullptr ? 0
                            : cell_->value.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool bound() const noexcept { return cell_ != nullptr; }

 private:
  friend class MetricRegistry;
  explicit constexpr Counter(detail::CounterCell* cell) noexcept
      : cell_(cell) {}
  detail::CounterCell* cell_ = nullptr;
};

/// Last-value gauge handle (token-bucket fill, queue depth, ...).
class Gauge {
 public:
  constexpr Gauge() noexcept = default;
  void set(double value) const noexcept {
    if (cell_ != nullptr) cell_->value.store(value, std::memory_order_relaxed);
  }
  [[nodiscard]] double value() const noexcept {
    return cell_ == nullptr ? 0.0
                            : cell_->value.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool bound() const noexcept { return cell_ != nullptr; }

 private:
  friend class MetricRegistry;
  explicit constexpr Gauge(detail::GaugeCell* cell) noexcept : cell_(cell) {}
  detail::GaugeCell* cell_ = nullptr;
};

/// Fixed-bucket histogram handle. observe() is lock-free: a bucket
/// lower_bound plus three relaxed atomic adds per observation — cheap
/// against the paging work it instruments, measured by
/// bench_e15_observability.
class Histogram {
 public:
  constexpr Histogram() noexcept = default;
  void observe(double value) const noexcept;
  /// Records `trace_id` as the exemplar of the bucket `value` lands in
  /// (latest annotation wins — a hot bucket naturally carries the trace
  /// id of its most recent sampled observation). Call AFTER observe(),
  /// only when the observation's trace was actually sampled; a zero
  /// trace_id (unsampled span) is a no-op, as is an unbound handle.
  /// Takes a per-histogram mutex — rare by construction (1-in-N
  /// sampling), so the locate hot path never sees the lock.
  void annotate(double value, std::uint64_t trace_id) const noexcept;
  [[nodiscard]] bool bound() const noexcept { return cell_ != nullptr; }

 private:
  friend class MetricRegistry;
  explicit constexpr Histogram(detail::HistogramCell* cell) noexcept
      : cell_(cell) {}
  detail::HistogramCell* cell_ = nullptr;
};

/// Point-in-time copy of one histogram, mergeable with another taken
/// from an identically-specced histogram.
struct HistogramSnapshot {
  std::vector<double> upper_bounds;
  std::vector<std::uint64_t> counts;  ///< per bucket, overflow last
  std::uint64_t count = 0;
  double sum = 0.0;
  /// Per-bucket exemplars (parallel to counts, overflow last), or empty
  /// when the histogram has never been annotated. Merges keep the
  /// first-operand exemplar when both sides have one (deterministic
  /// given the merge order, like the floating-point sums); deltas keep
  /// the current side's exemplars verbatim (an annotation is a level,
  /// not a rate).
  std::vector<Exemplar> exemplars;

  /// Smallest bucket upper bound with at least `p` of the observation
  /// mass at or below it; 0 when empty; the last finite bound for mass
  /// in the overflow bucket. Rounds its rank target exactly like
  /// cellular::SimReport::rounds_percentile, so the two agree on unit
  /// (integers()) buckets.
  [[nodiscard]] double quantile(double p) const noexcept;
};

/// One metric inside a RegistrySnapshot. Exactly one of the value
/// fields is meaningful, selected by `type`.
struct MetricSnapshot {
  std::string name;
  MetricLabels labels;
  std::string help;
  MetricType type = MetricType::kCounter;
  std::uint64_t counter_value = 0;
  double gauge_value = 0.0;
  HistogramSnapshot histogram;

  /// "name" or "name{k=\"v\",...}" — the identity used for sorting,
  /// merging and the Prometheus exposition.
  [[nodiscard]] std::string key() const;
};

/// A consistent cut of a whole registry, sorted by key. This is what
/// exporters consume and what SimReport carries across replication
/// merges.
struct RegistrySnapshot {
  std::vector<MetricSnapshot> metrics;

  /// Folds `other` in by key: counters and histogram buckets add,
  /// gauges and histogram sums add as doubles, metrics missing on
  /// either side are kept. Throws std::invalid_argument on a type or
  /// bucket-layout mismatch under the same key. Deterministic given the
  /// merge order (integer parts are order-free).
  void merge(const RegistrySnapshot& other);

  /// The windowed view: what happened between `prev` (an earlier
  /// snapshot of the SAME registry) and this one. Counters and histogram
  /// buckets subtract key-aligned; gauges keep their CURRENT value (a
  /// gauge is a level, not a rate). Metrics absent from `prev` are kept
  /// verbatim (the series appeared during the window). Throws
  /// std::invalid_argument when `prev` holds a key this snapshot lacks,
  /// or when any counter/bucket went backwards — both mean `prev` came
  /// from a different or restarted registry, and a silent negative rate
  /// would poison every percentile computed from the delta. This is what
  /// the SLO controller and interval-rate reporting consume: interval
  /// p99s instead of lifetime aggregates.
  [[nodiscard]] RegistrySnapshot delta(const RegistrySnapshot& prev) const;

  /// Label algebra: `sum without (keys)` in PromQL terms. Returns a
  /// new snapshot with the named label keys stripped from every series;
  /// series whose keys collide after the erasure fold together with the
  /// merge() semantics (counters/buckets integer-add, gauges/sums
  /// double-add, histograms bucket-wise so quantiles over the view stay
  /// consistent). Erasing the "shard" key turns per-shard fleet series
  /// into the fleet-wide totals — and because the series are cuts of
  /// one workload, the erased view is INVARIANT across shard counts
  /// (resharding redistributes labels, never totals), which is what
  /// makes fleet SLO control deterministic at shards 1/2/8. Throws
  /// std::invalid_argument if collapsing series disagree on type or
  /// bucket layout.
  [[nodiscard]] RegistrySnapshot erase_labels(
      const std::vector<std::string>& keys) const;

  /// `sum by ()` over one family: every series named `name`, all labels
  /// erased, folded into a single label-less snapshot (histograms merge
  /// bucket-wise). nullopt when no series has that name. This is the
  /// fleet SLO sensor: sum_by("confcall_locate_rounds") over a delta
  /// window reads the fleet-wide interval rounds distribution whether
  /// the daemon runs unlabelled single-service or {shard="s"} series.
  [[nodiscard]] std::optional<MetricSnapshot> sum_by(
      std::string_view name) const;

  /// Lookup by name + labels; nullptr when absent.
  [[nodiscard]] const MetricSnapshot* find(
      std::string_view name, const MetricLabels& labels = {}) const noexcept;

  [[nodiscard]] bool empty() const noexcept { return metrics.empty(); }
};

/// The registry: named metrics behind lock-sharded registration.
/// Registration is idempotent — the same (name, labels) returns the
/// same cell, so independent components can share a series — but a
/// type or bucket-spec mismatch throws instead of silently aliasing.
/// Handles stay valid for the registry's lifetime; the registry is
/// neither copyable nor movable for that reason.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// Throws std::invalid_argument on a malformed name/label (metric and
  /// label names must match [a-zA-Z_][a-zA-Z0-9_]*) or a type mismatch
  /// with an existing registration.
  [[nodiscard]] Counter counter(const std::string& name,
                                const std::string& help,
                                const MetricLabels& labels = {});
  [[nodiscard]] Gauge gauge(const std::string& name, const std::string& help,
                            const MetricLabels& labels = {});
  [[nodiscard]] Histogram histogram(const std::string& name,
                                    const HistogramSpec& spec,
                                    const std::string& help,
                                    const MetricLabels& labels = {});

  /// One consistent cut of every registered metric, sorted by key.
  [[nodiscard]] RegistrySnapshot snapshot() const;

 private:
  struct Entry {
    MetricType type;
    std::string name;
    MetricLabels labels;
    std::string help;
    detail::CounterCell* counter = nullptr;
    detail::GaugeCell* gauge = nullptr;
    detail::HistogramCell* histogram = nullptr;
  };
  struct Shard {
    mutable std::mutex mutex;
    // Deques: grow-stable addresses, so handles never dangle.
    std::deque<detail::CounterCell> counters;
    std::deque<detail::GaugeCell> gauges;
    std::deque<detail::HistogramCell> histograms;
    std::map<std::string, Entry> by_key;
  };
  static constexpr std::size_t kNumShards = 16;

  Shard& shard_for(const std::string& name) noexcept;
  Entry& find_or_create(Shard& shard, MetricType type,
                        const std::string& name, const MetricLabels& labels,
                        const std::string& help, const HistogramSpec* spec);

  Shard shards_[kNumShards];
};

/// Renders a snapshot as pretty-printed JSON with stable key order:
/// {"counters": {...}, "gauges": {...}, "histograms": {name: {count,
/// sum, p50, p99, buckets}}}. Numeric leaves pair by path, which is
/// exactly what tools/bench_compare.py walks — bench JSON built from a
/// snapshot feeds the existing artifact-comparison flow unchanged.
[[nodiscard]] std::string to_json(const RegistrySnapshot& snapshot);

/// Exposition options. Defaults render the classic Prometheus text
/// format byte-identically to every prior release (the E16 scrape
/// byte-identity gate pins this); exemplars opt in to the OpenMetrics
/// `... # {trace_id="<16-hex>"} value` suffix on _bucket samples.
struct PrometheusOptions {
  bool exemplars = false;
};

/// Renders a snapshot in the Prometheus text exposition format
/// (# HELP / # TYPE lines, cumulative `le` buckets, +Inf, _sum/_count).
[[nodiscard]] std::string to_prometheus(const RegistrySnapshot& snapshot);
[[nodiscard]] std::string to_prometheus(const RegistrySnapshot& snapshot,
                                        const PrometheusOptions& options);

}  // namespace confcall::support
