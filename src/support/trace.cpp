#include "support/trace.h"

#include <sstream>
#include <stdexcept>

namespace confcall::support {
namespace {

// Parent stack per thread: the innermost open span, if any, parents the
// next one constructed on the same thread.
thread_local std::vector<std::uint64_t> t_span_stack;

// Open spans (on this thread) belonging to a trace whose root was not
// sampled. While nonzero, every new Span joins the suppressed trace
// instead of consulting the sampler — the root's verdict covers the
// whole tree, so sampling can never tear a trace apart.
thread_local std::size_t t_suppressed_depth = 0;

std::string json_escape(const char* s) {
  std::string out;
  for (; *s != '\0'; ++s) {
    switch (*s) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += *s;
    }
  }
  return out;
}

// Nanoseconds as a microsecond count with a fixed three-digit fraction
// ("1234.567"): trace_event ts/dur are conventionally microseconds, and
// the fixed-point rendering keeps full ns precision while staying
// byte-deterministic (no double formatting involved).
void append_us(std::ostringstream& os, std::uint64_t ns) {
  os << ns / 1000 << '.';
  const auto frac = static_cast<unsigned>(ns % 1000);
  os << static_cast<char>('0' + frac / 100)
     << static_cast<char>('0' + (frac / 10) % 10)
     << static_cast<char>('0' + frac % 10);
}

}  // namespace

Tracer::Tracer(std::size_t capacity, const ClockSource& clock)
    : clock_(&clock), capacity_(capacity) {
  if (capacity_ == 0) {
    throw std::invalid_argument("Tracer capacity must be >= 1");
  }
  ring_.reserve(capacity_);
}

std::vector<SpanRecord> Tracer::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.size() < capacity_) return ring_;  // not yet wrapped
  std::vector<SpanRecord> out;
  out.reserve(capacity_);
  for (std::size_t i = 0; i < capacity_; ++i) {
    out.push_back(ring_[(next_slot_ + i) % capacity_]);
  }
  return out;
}

std::uint64_t Tracer::recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return recorded_;
}

std::uint64_t Tracer::next_span_id() noexcept {
  return next_id_.fetch_add(1, std::memory_order_relaxed);
}

void Tracer::record(const SpanRecord& span) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(span);
  } else {
    ring_[next_slot_] = span;
    next_slot_ = (next_slot_ + 1) % capacity_;
  }
  ++recorded_;
}

SamplingTracer::SamplingTracer(std::size_t sample_every, std::size_t capacity,
                               const ClockSource& clock)
    : Tracer(capacity, clock), every_(sample_every) {
  if (every_ == 0) {
    throw std::invalid_argument(
        "SamplingTracer sample_every must be >= 1 (1 keeps everything)");
  }
}

bool SamplingTracer::sample_root() noexcept {
  const std::uint64_t seen =
      roots_seen_.fetch_add(1, std::memory_order_relaxed);
  const bool keep = seen % every_ == 0;
  if (keep) roots_sampled_.fetch_add(1, std::memory_order_relaxed);
  return keep;
}

Span::Span(Tracer* tracer, const char* name) : tracer_(tracer) {
  if (tracer_ == nullptr) return;
  if (t_suppressed_depth > 0) {
    // Inside an unsampled trace: inherit the root's verdict, pay nothing.
    ++t_suppressed_depth;
    suppressed_ = true;
    return;
  }
  if (t_span_stack.empty() && !tracer_->sample_root()) {
    t_suppressed_depth = 1;
    suppressed_ = true;
    return;
  }
  record_.name = name;
  record_.span_id = tracer_->next_span_id();
  record_.parent_id = t_span_stack.empty() ? 0 : t_span_stack.back();
  record_.start_ns = tracer_->clock().now_ns();
  t_span_stack.push_back(record_.span_id);
}

Span::~Span() {
  if (suppressed_) {
    --t_suppressed_depth;
    return;
  }
  if (tracer_ == nullptr) return;
  record_.end_ns = tracer_->clock().now_ns();
  // Scoping guarantees LIFO, so our id is on top.
  t_span_stack.pop_back();
  tracer_->record(record_);
}

std::string to_json(const std::vector<SpanRecord>& spans) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& span = spans[i];
    if (i > 0) os << ",";
    os << "\n  {\"name\": \"" << json_escape(span.name)
       << "\", \"span_id\": " << span.span_id
       << ", \"parent_id\": " << span.parent_id
       << ", \"start_ns\": " << span.start_ns
       << ", \"end_ns\": " << span.end_ns << "}";
  }
  os << (spans.empty() ? "]" : "\n]");
  os << "\n";
  return os.str();
}

std::string to_trace_event_json(const std::vector<SpanRecord>& spans) {
  std::ostringstream os;
  os << "{\"traceEvents\": [";
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& span = spans[i];
    if (i > 0) os << ",";
    os << "\n  {\"name\": \"" << json_escape(span.name)
       << "\", \"cat\": \"confcall\", \"ph\": \"X\", \"ts\": ";
    append_us(os, span.start_ns);
    os << ", \"dur\": ";
    append_us(os, span.duration_ns());
    os << ", \"pid\": 1, \"tid\": 1, \"args\": {\"span_id\": "
       << span.span_id << ", \"parent_id\": " << span.parent_id << "}}";
  }
  os << (spans.empty() ? "]" : "\n]") << ", \"displayTimeUnit\": \"ns\"}\n";
  return os.str();
}

}  // namespace confcall::support
