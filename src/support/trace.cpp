#include "support/trace.h"

#include <sstream>
#include <stdexcept>

namespace confcall::support {
namespace {

// Parent stack per thread: the innermost open span, if any, parents the
// next one constructed on the same thread.
thread_local std::vector<std::uint64_t> t_span_stack;

std::string json_escape(const char* s) {
  std::string out;
  for (; *s != '\0'; ++s) {
    switch (*s) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += *s;
    }
  }
  return out;
}

}  // namespace

Tracer::Tracer(std::size_t capacity, const ClockSource& clock)
    : clock_(&clock), capacity_(capacity) {
  if (capacity_ == 0) {
    throw std::invalid_argument("Tracer capacity must be >= 1");
  }
  ring_.reserve(capacity_);
}

std::vector<SpanRecord> Tracer::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.size() < capacity_) return ring_;  // not yet wrapped
  std::vector<SpanRecord> out;
  out.reserve(capacity_);
  for (std::size_t i = 0; i < capacity_; ++i) {
    out.push_back(ring_[(next_slot_ + i) % capacity_]);
  }
  return out;
}

std::uint64_t Tracer::recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return recorded_;
}

std::uint64_t Tracer::next_span_id() noexcept {
  return next_id_.fetch_add(1, std::memory_order_relaxed);
}

void Tracer::record(const SpanRecord& span) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(span);
  } else {
    ring_[next_slot_] = span;
    next_slot_ = (next_slot_ + 1) % capacity_;
  }
  ++recorded_;
}

Span::Span(Tracer* tracer, const char* name) : tracer_(tracer) {
  if (tracer_ == nullptr) return;
  record_.name = name;
  record_.span_id = tracer_->next_span_id();
  record_.parent_id = t_span_stack.empty() ? 0 : t_span_stack.back();
  record_.start_ns = tracer_->clock().now_ns();
  t_span_stack.push_back(record_.span_id);
}

Span::~Span() {
  if (tracer_ == nullptr) return;
  record_.end_ns = tracer_->clock().now_ns();
  // Scoping guarantees LIFO, so our id is on top.
  t_span_stack.pop_back();
  tracer_->record(record_);
}

std::string to_json(const std::vector<SpanRecord>& spans) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& span = spans[i];
    if (i > 0) os << ",";
    os << "\n  {\"name\": \"" << json_escape(span.name)
       << "\", \"span_id\": " << span.span_id
       << ", \"parent_id\": " << span.parent_id
       << ", \"start_ns\": " << span.start_ns
       << ", \"end_ns\": " << span.end_ns << "}";
  }
  os << (spans.empty() ? "]" : "\n]");
  os << "\n";
  return os.str();
}

}  // namespace confcall::support
