#include "support/state_io.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

namespace confcall::support {

namespace {

// File header layout (all little-endian):
//   [0..8)   magic "CONFCKPT"
//   [8..12)  file-format version (u32)
//   [12..20) payload length (u64)
//   [20..28) FNV-1a-64 checksum of the payload
//   [28..)   payload (StateBundle framing)
constexpr char kMagic[8] = {'C', 'O', 'N', 'F', 'C', 'K', 'P', 'T'};
constexpr std::size_t kHeaderBytes = 28;

// Caps on section framing: a corrupt length must fail fast, not size a
// container. Payloads are additionally bounded by the file length, which
// the header check already validated.
constexpr std::uint64_t kMaxSections = 1024;
constexpr std::uint64_t kMaxSectionName = 256;

void append_u32(std::string& out, std::uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

void append_u64(std::string& out, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

std::uint64_t read_u64_at(std::string_view bytes, std::size_t pos) {
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(bytes[pos + i]))
             << (8 * i);
  }
  return value;
}

std::uint32_t read_u32_at(std::string_view bytes, std::size_t pos) {
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<std::uint32_t>(
                 static_cast<unsigned char>(bytes[pos + i]))
             << (8 * i);
  }
  return value;
}

}  // namespace

void StateWriter::put_u8(std::uint8_t value) {
  out_.push_back(static_cast<char>(value));
}

void StateWriter::put_u32(std::uint32_t value) { append_u32(out_, value); }

void StateWriter::put_u64(std::uint64_t value) { append_u64(out_, value); }

void StateWriter::put_f64(double value) {
  static_assert(sizeof(double) == sizeof(std::uint64_t));
  std::uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  append_u64(out_, bits);
}

void StateWriter::put_bytes(std::string_view bytes) {
  append_u64(out_, bytes.size());
  out_.append(bytes.data(), bytes.size());
}

void StateReader::need(std::size_t n) const {
  if (bytes_.size() - pos_ < n) {
    throw StateFormatError("state payload truncated: need " +
                           std::to_string(n) + " bytes at offset " +
                           std::to_string(pos_) + ", have " +
                           std::to_string(bytes_.size() - pos_));
  }
}

std::uint8_t StateReader::get_u8() {
  need(1);
  return static_cast<std::uint8_t>(
      static_cast<unsigned char>(bytes_[pos_++]));
}

std::uint32_t StateReader::get_u32() {
  need(4);
  const std::uint32_t value = read_u32_at(bytes_, pos_);
  pos_ += 4;
  return value;
}

std::uint64_t StateReader::get_u64() {
  need(8);
  const std::uint64_t value = read_u64_at(bytes_, pos_);
  pos_ += 8;
  return value;
}

double StateReader::get_f64() {
  const std::uint64_t bits = get_u64();
  double value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

std::string_view StateReader::get_bytes() {
  const std::uint64_t len = get_u64();
  if (len > bytes_.size() - pos_) {
    throw StateFormatError("state payload truncated: byte-string length " +
                           std::to_string(len) + " exceeds remaining " +
                           std::to_string(bytes_.size() - pos_));
  }
  const std::string_view view = bytes_.substr(pos_, len);
  pos_ += len;
  return view;
}

std::uint64_t StateReader::get_count(std::uint64_t max) {
  const std::uint64_t value = get_u64();
  if (value > max) {
    throw StateFormatError("state payload count " + std::to_string(value) +
                           " exceeds cap " + std::to_string(max));
  }
  return value;
}

void StateBundle::add(std::string name, std::uint32_t version,
                      std::string payload) {
  sections_.push_back(
      StateSection{std::move(name), version, std::move(payload)});
}

const StateSection* StateBundle::find(std::string_view name) const {
  for (const StateSection& section : sections_) {
    if (section.name == name) return &section;
  }
  return nullptr;
}

std::string StateBundle::serialize() const {
  StateWriter writer;
  writer.put_u64(sections_.size());
  for (const StateSection& section : sections_) {
    writer.put_bytes(section.name);
    writer.put_u32(section.version);
    writer.put_bytes(section.payload);
  }
  return std::move(writer).take();
}

StateBundle StateBundle::deserialize(std::string_view bytes) {
  StateReader reader(bytes);
  StateBundle bundle;
  const std::uint64_t count = reader.get_count(kMaxSections);
  for (std::uint64_t i = 0; i < count; ++i) {
    StateSection section;
    const std::string_view name = reader.get_bytes();
    if (name.size() > kMaxSectionName) {
      throw StateFormatError("state section name too long: " +
                             std::to_string(name.size()) + " bytes");
    }
    section.name.assign(name);
    section.version = reader.get_u32();
    section.payload.assign(reader.get_bytes());
    bundle.sections_.push_back(std::move(section));
  }
  if (!reader.at_end()) {
    throw StateFormatError("state payload has " +
                           std::to_string(reader.remaining()) +
                           " trailing bytes after the last section");
  }
  return bundle;
}

const char* state_load_status_name(StateLoadStatus status) noexcept {
  switch (status) {
    case StateLoadStatus::kOk:
      return "ok";
    case StateLoadStatus::kMissing:
      return "missing";
    case StateLoadStatus::kIoError:
      return "io_error";
    case StateLoadStatus::kTruncated:
      return "truncated";
    case StateLoadStatus::kBadMagic:
      return "bad_magic";
    case StateLoadStatus::kBadVersion:
      return "bad_version";
    case StateLoadStatus::kBadChecksum:
      return "bad_checksum";
    case StateLoadStatus::kBadFormat:
      return "bad_format";
  }
  return "unknown";
}

std::uint64_t state_checksum(std::string_view bytes) noexcept {
  // FNV-1a 64: cheap, dependency-free, and plenty for detecting torn or
  // bit-flipped checkpoints (this is corruption detection, not crypto).
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

bool write_file_atomic(const std::string& path, std::string_view contents,
                       std::string* error) {
  const std::string tmp_path =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  const int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    if (error != nullptr) {
      *error = "open " + tmp_path + ": " + std::strerror(errno);
    }
    return false;
  }
  std::size_t written = 0;
  while (written < contents.size()) {
    const ssize_t n =
        ::write(fd, contents.data() + written, contents.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (error != nullptr) {
        *error = "write " + tmp_path + ": " + std::strerror(errno);
      }
      ::close(fd);
      ::unlink(tmp_path.c_str());
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  // fsync before rename: the rename must not become durable before the
  // data, or a crash could expose a complete-looking but empty file.
  if (::fsync(fd) != 0) {
    if (error != nullptr) {
      *error = "fsync " + tmp_path + ": " + std::strerror(errno);
    }
    ::close(fd);
    ::unlink(tmp_path.c_str());
    return false;
  }
  if (::close(fd) != 0) {
    if (error != nullptr) {
      *error = "close " + tmp_path + ": " + std::strerror(errno);
    }
    ::unlink(tmp_path.c_str());
    return false;
  }
  if (::rename(tmp_path.c_str(), path.c_str()) != 0) {
    if (error != nullptr) {
      *error = "rename " + tmp_path + " -> " + path + ": " +
               std::strerror(errno);
    }
    ::unlink(tmp_path.c_str());
    return false;
  }
  return true;
}

std::size_t save_state_file(const std::string& path,
                            const StateBundle& bundle) {
  const std::string payload = bundle.serialize();
  std::string file;
  file.reserve(kHeaderBytes + payload.size());
  file.append(kMagic, sizeof(kMagic));
  append_u32(file, kStateFileVersion);
  append_u64(file, payload.size());
  append_u64(file, state_checksum(payload));
  file.append(payload);
  std::string error;
  if (!write_file_atomic(path, file, &error)) {
    throw std::runtime_error("save_state_file: " + error);
  }
  return file.size();
}

StateLoadResult load_state_file(const std::string& path) {
  StateLoadResult result;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    const bool missing = errno == ENOENT;
    result.status =
        missing ? StateLoadStatus::kMissing : StateLoadStatus::kIoError;
    result.message = "open " + path + ": " + std::strerror(errno);
    return result;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    result.status = StateLoadStatus::kIoError;
    result.message = "read " + path + " failed";
    return result;
  }
  const std::string file = buffer.str();

  if (file.size() < kHeaderBytes) {
    result.status = StateLoadStatus::kTruncated;
    result.message = "file is " + std::to_string(file.size()) +
                     " bytes, shorter than the " +
                     std::to_string(kHeaderBytes) + "-byte header";
    return result;
  }
  if (std::memcmp(file.data(), kMagic, sizeof(kMagic)) != 0) {
    result.status = StateLoadStatus::kBadMagic;
    result.message = "magic mismatch: not a confcall state file";
    return result;
  }
  const std::uint32_t version = read_u32_at(file, 8);
  if (version != kStateFileVersion) {
    result.status = StateLoadStatus::kBadVersion;
    result.message = "file-format version " + std::to_string(version) +
                     ", this build speaks " +
                     std::to_string(kStateFileVersion);
    return result;
  }
  const std::uint64_t payload_len = read_u64_at(file, 12);
  if (payload_len != file.size() - kHeaderBytes) {
    result.status = StateLoadStatus::kTruncated;
    result.message = "header declares " + std::to_string(payload_len) +
                     " payload bytes, file carries " +
                     std::to_string(file.size() - kHeaderBytes);
    return result;
  }
  const std::string_view payload =
      std::string_view(file).substr(kHeaderBytes);
  const std::uint64_t expected = read_u64_at(file, 20);
  const std::uint64_t actual = state_checksum(payload);
  if (expected != actual) {
    result.status = StateLoadStatus::kBadChecksum;
    result.message = "payload checksum mismatch";
    return result;
  }
  try {
    result.bundle = StateBundle::deserialize(payload);
  } catch (const StateFormatError& e) {
    result.status = StateLoadStatus::kBadFormat;
    result.message = e.what();
    return result;
  }
  result.status = StateLoadStatus::kOk;
  result.message = "ok";
  return result;
}

}  // namespace confcall::support
