// Span tracing: a ring-buffer sink plus an RAII Span guard, built on the
// same injectable ClockSource as the overload primitives so traces are
// deterministic under ManualClock (every span in a simulated locate gets
// exact virtual-time bounds, reproducible bit-for-bit).
//
// This is deliberately tiny — not OpenTelemetry. The system needs to
// answer "where did this locate's budget go: planning, paging rounds, or
// recovery?", which takes a name, a parent, and two timestamps. Spans
// nest via a thread_local parent stack: a Span opened while another Span
// on the same thread is alive records that span as its parent, so the
// plan / page-rounds / recovery children hang off the per-call locate
// span without any context plumbing through the call graph.
//
// The sink is a fixed-capacity ring: tracing N spans costs one short
// locked append each and the memory never grows, so a Tracer can stay
// attached to a long simulation and keep only the most recent window.
// A null Tracer* disables tracing at the call site for free — the Span
// constructor does not even read the clock.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "support/overload.h"

namespace confcall::support {

/// One finished span. `name` must be a string literal (or otherwise
/// outlive the Tracer) — spans are recorded on hot paths and must not
/// allocate.
struct SpanRecord {
  const char* name = "";
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;  ///< 0 = root
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;

  [[nodiscard]] std::uint64_t duration_ns() const noexcept {
    return end_ns - start_ns;
  }
};

/// Fixed-capacity ring-buffer span sink. Internally locked; spans may
/// finish on any thread. The clock must outlive the tracer.
class Tracer {
 public:
  explicit Tracer(std::size_t capacity = 1024,
                  const ClockSource& clock = SteadyClockSource::shared());
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// The retained spans, oldest first. At most `capacity` of them — the
  /// ring overwrites, which recorded() exposes.
  [[nodiscard]] std::vector<SpanRecord> snapshot() const;

  /// Total spans ever recorded (>= snapshot().size(); the difference is
  /// how many the ring has dropped).
  [[nodiscard]] std::uint64_t recorded() const;

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] const ClockSource& clock() const noexcept { return *clock_; }

 private:
  friend class Span;
  [[nodiscard]] std::uint64_t next_span_id() noexcept;
  void record(const SpanRecord& span);

  const ClockSource* clock_;
  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<SpanRecord> ring_;
  std::size_t next_slot_ = 0;
  std::uint64_t recorded_ = 0;
  std::atomic<std::uint64_t> next_id_{1};
};

/// RAII span guard: records [construction, destruction) into the tracer.
/// Constructing with a null tracer is a no-op (the standard pattern for
/// optionally-traced code paths). Non-copyable, non-movable — a Span is
/// pinned to the scope it measures, and the thread_local parent stack
/// requires destruction on the constructing thread in LIFO order, which
/// scoping guarantees.
class Span {
 public:
  Span(Tracer* tracer, const char* name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// This span's id while open (0 when the tracer is null).
  [[nodiscard]] std::uint64_t id() const noexcept { return record_.span_id; }

 private:
  Tracer* tracer_;
  SpanRecord record_;
};

/// Spans as a JSON array (oldest first), fields name/span_id/parent_id/
/// start_ns/end_ns — consumed by tests and dumpable from benches.
[[nodiscard]] std::string to_json(const std::vector<SpanRecord>& spans);

}  // namespace confcall::support
