// Span tracing: a ring-buffer sink plus an RAII Span guard, built on the
// same injectable ClockSource as the overload primitives so traces are
// deterministic under ManualClock (every span in a simulated locate gets
// exact virtual-time bounds, reproducible bit-for-bit).
//
// This is deliberately tiny — not OpenTelemetry. The system needs to
// answer "where did this locate's budget go: planning, paging rounds, or
// recovery?", which takes a name, a parent, and two timestamps. Spans
// nest via a thread_local parent stack: a Span opened while another Span
// on the same thread is alive records that span as its parent, so the
// plan / page-rounds / recovery children hang off the per-call locate
// span without any context plumbing through the call graph.
//
// The sink is a fixed-capacity ring: tracing N spans costs one short
// locked append each and the memory never grows, so a Tracer can stay
// attached to a long simulation and keep only the most recent window.
// A null Tracer* disables tracing at the call site for free — the Span
// constructor does not even read the clock.
//
// Always-on tracing of every call costs ~29% of locate() throughput
// (four spans × two clock reads each; E15 measures the traced side at
// ~71% of the untraced throughput). SamplingTracer recovers the budget:
// a deterministic counter keeps 1 in N ROOT spans, and the decision is
// made exactly once per trace — children of an unsampled root are
// suppressed through a thread-local depth counter, so a retained trace
// is always a complete tree (never torn) and an unsampled call pays no
// clock read and no lock, only a thread-local increment.
//
// Fleet-lane audit (one tracer shared by every ServiceFleet shard):
//   * the root-sampling decision is a single relaxed fetch_add on
//     roots_seen_ — atomic across lanes, so exactly 1 in N roots is
//     kept fleet-wide regardless of which shard threads race;
//   * the parent stack and the suppressed-depth counter are
//     thread_local, and fleet tasks run each locate to completion on
//     one pool thread (spans never migrate mid-trace), so a lane's
//     span tree can neither parent into nor suppress another lane's;
//   * ring appends and span-id allocation are mutex'd / atomic.
// The Fleet tracing storm test runs under the TSan CI row to keep this
// audit honest.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "support/overload.h"

namespace confcall::support {

/// One finished span. `name` must be a string literal (or otherwise
/// outlive the Tracer) — spans are recorded on hot paths and must not
/// allocate.
struct SpanRecord {
  const char* name = "";
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;  ///< 0 = root
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;

  [[nodiscard]] std::uint64_t duration_ns() const noexcept {
    return end_ns - start_ns;
  }
};

/// Fixed-capacity ring-buffer span sink. Internally locked; spans may
/// finish on any thread. The clock must outlive the tracer. The base
/// class keeps every trace; SamplingTracer below keeps 1 in N.
class Tracer {
 public:
  explicit Tracer(std::size_t capacity = 1024,
                  const ClockSource& clock = SteadyClockSource::shared());
  virtual ~Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// The retained spans, oldest first. At most `capacity` of them — the
  /// ring overwrites, which recorded() exposes.
  [[nodiscard]] std::vector<SpanRecord> snapshot() const;

  /// Total spans ever recorded (>= snapshot().size(); the difference is
  /// how many the ring has dropped).
  [[nodiscard]] std::uint64_t recorded() const;

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] const ClockSource& clock() const noexcept { return *clock_; }

 protected:
  /// The per-trace sampling decision, consulted exactly once, by the
  /// ROOT Span of each trace. The base tracer keeps everything; an
  /// override that returns false suppresses the whole tree (children
  /// inherit the root's verdict through the thread-local depth counter,
  /// never re-deciding — see Span).
  [[nodiscard]] virtual bool sample_root() noexcept { return true; }

 private:
  friend class Span;
  [[nodiscard]] std::uint64_t next_span_id() noexcept;
  void record(const SpanRecord& span);

  const ClockSource* clock_;
  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<SpanRecord> ring_;
  std::size_t next_slot_ = 0;
  std::uint64_t recorded_ = 0;
  std::atomic<std::uint64_t> next_id_{1};
};

/// Deterministic 1-in-N tracer: a relaxed atomic counter over root spans
/// keeps roots 0, N, 2N, ... and drops the rest, so the retained stream
/// is a strided, reproducible subsample of the call sequence (no RNG —
/// under a ManualClock the whole trace set is bit-identical run to run;
/// across threads the counter still guarantees exactly one trace kept
/// per N roots, with which calls win decided by arrival order).
/// sample_every == 1 keeps everything (== the base Tracer).
class SamplingTracer final : public Tracer {
 public:
  /// Throws std::invalid_argument when sample_every == 0 (use 1 to keep
  /// everything) or capacity == 0.
  explicit SamplingTracer(std::size_t sample_every,
                          std::size_t capacity = 1024,
                          const ClockSource& clock =
                              SteadyClockSource::shared());

  [[nodiscard]] std::size_t sample_every() const noexcept { return every_; }
  /// Root spans that consulted the sampler / that it kept.
  [[nodiscard]] std::uint64_t roots_seen() const noexcept {
    return roots_seen_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t roots_sampled() const noexcept {
    return roots_sampled_.load(std::memory_order_relaxed);
  }

 protected:
  [[nodiscard]] bool sample_root() noexcept override;

 private:
  std::size_t every_;
  std::atomic<std::uint64_t> roots_seen_{0};
  std::atomic<std::uint64_t> roots_sampled_{0};
};

/// RAII span guard: records [construction, destruction) into the tracer.
/// Constructing with a null tracer is a no-op (the standard pattern for
/// optionally-traced code paths). Non-copyable, non-movable — a Span is
/// pinned to the scope it measures, and the thread_local parent stack
/// requires destruction on the constructing thread in LIFO order, which
/// scoping guarantees.
class Span {
 public:
  Span(Tracer* tracer, const char* name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// This span's id while open (0 when the tracer is null or the trace
  /// was not sampled).
  [[nodiscard]] std::uint64_t id() const noexcept { return record_.span_id; }

 private:
  Tracer* tracer_;
  /// This span belongs to a trace whose root was NOT sampled: it holds a
  /// slot in the thread-local suppressed-depth counter (so descendants
  /// inherit the verdict) but records nothing.
  bool suppressed_ = false;
  SpanRecord record_;
};

/// Spans as a JSON array (oldest first), fields name/span_id/parent_id/
/// start_ns/end_ns — consumed by tests and dumpable from benches.
[[nodiscard]] std::string to_json(const std::vector<SpanRecord>& spans);

/// Spans in the Chrome trace_event JSON format (the `chrome://tracing` /
/// Perfetto "JSON Array Format"): one complete event (`"ph": "X"`) per
/// span with microsecond `ts`/`dur` carrying the full nanosecond
/// precision as fixed three-decimal fractions, and span/parent ids under
/// `args`. Load the output directly in a trace viewer. Deterministic
/// byte-for-byte given the spans.
[[nodiscard]] std::string to_trace_event_json(
    const std::vector<SpanRecord>& spans);

}  // namespace confcall::support
