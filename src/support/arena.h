// Thread-local bump arena for per-call scratch rows.
//
// The evaluator and the Fig. 1 DP need a handful of short-lived arrays per
// call (per-device prefix/compensation/clamped rows, the DP's ping-pong
// value rows and backtrack table). Before this arena each evaluate/plan
// call heap-allocated them afresh — at hundreds of thousands of locate()
// calls per second the allocator, not the arithmetic, dominated. A bump
// arena turns each of those allocations into a pointer increment, and the
// memory is reused call after call instead of churning the heap.
//
// Lifetime rules (also DESIGN.md §12):
//
//   * Scratch only. Allocations are raw uninitialized (or value-filled)
//     trivially-destructible storage; nothing is ever destructed, so only
//     PODs (double, std::uint32_t, ...) may live here.
//   * Scoped. Callers open a ScratchArena::Scope; every alloc() made while
//     the scope is open is released — as one pointer move, not per
//     allocation — when it closes. Scopes nest (evaluate inside plan
//     inside locate), restoring the exact watermark of the enclosing
//     scope, so a callee's scratch never outlives its frame while the
//     caller's survives untouched.
//   * Thread-local. ScratchArena::local() hands each thread its own
//     arena, so parallel_for workers (Monte-Carlo shards, sim batches)
//     bump without synchronization. Never hand a span from one thread's
//     arena to another thread that outlives the scope.
//   * Chunks are retained. reset()/scope-exit recycles the high-water
//     memory instead of freeing it; a steady workload stops calling the
//     allocator entirely after the first call at peak size.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

namespace confcall::support {

class ScratchArena {
 public:
  /// The first chunk is sized `initial_bytes` (rounded up to a minimum)
  /// and allocated lazily on first use.
  explicit ScratchArena(std::size_t initial_bytes = 1 << 16)
      : initial_bytes_(initial_bytes < kMinChunk ? kMinChunk
                                                 : initial_bytes) {}

  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;

  /// Uninitialized storage for `count` Ts. T must be trivially
  /// destructible (nothing here is ever destructed) and trivially
  /// copyable (nothing here is ever constructed either).
  template <typename T>
  [[nodiscard]] std::span<T> alloc(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T> &&
                      std::is_trivially_copyable_v<T>,
                  "ScratchArena holds raw POD scratch only");
    return {static_cast<T*>(allocate_bytes(count * sizeof(T), alignof(T))),
            count};
  }

  /// Storage for `count` Ts, every element set to `fill`.
  template <typename T>
  [[nodiscard]] std::span<T> alloc(std::size_t count, T fill) {
    const std::span<T> out = alloc<T>(count);
    for (T& value : out) value = fill;
    return out;
  }

  /// Releases everything allocated since construction (memory retained).
  void reset() noexcept {
    chunk_ = 0;
    offset_ = 0;
  }

  /// Bytes currently live (spans handed out under open scopes).
  [[nodiscard]] std::size_t bytes_in_use() const noexcept;

  /// Bytes owned across all retained chunks (the high-water footprint).
  [[nodiscard]] std::size_t bytes_reserved() const noexcept;

  /// RAII frame: releases (as one watermark restore) every allocation
  /// made on the arena while this scope was open. Nest freely.
  class Scope {
   public:
    explicit Scope(ScratchArena& arena) noexcept
        : arena_(&arena),
          saved_chunk_(arena.chunk_),
          saved_offset_(arena.offset_) {}
    ~Scope() {
      arena_->chunk_ = saved_chunk_;
      arena_->offset_ = saved_offset_;
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    ScratchArena* arena_;
    std::size_t saved_chunk_;
    std::size_t saved_offset_;
  };

  /// This thread's arena (constructed on first use, lives for the
  /// thread). The hot paths all share it, which is exactly the point:
  /// one warm chunk serves every evaluate/plan/locate on the thread.
  [[nodiscard]] static ScratchArena& local();

 private:
  static constexpr std::size_t kMinChunk = 4096;

  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  void* allocate_bytes(std::size_t bytes, std::size_t align);

  std::size_t initial_bytes_;
  std::vector<Chunk> chunks_;
  std::size_t chunk_ = 0;   ///< index of the chunk being bumped
  std::size_t offset_ = 0;  ///< bump offset within that chunk
};

}  // namespace confcall::support
