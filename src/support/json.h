// Minimal recursive-descent JSON parser — the read side of the wire.
//
// The repo has long had JSON *writers* (metric snapshots, trace events,
// bench reports) but no reader, because nothing accepted JSON input.
// The batched POST /locate endpoint (tools/confcall_serve) changes
// that: clients submit call batches as JSON and malformed input must be
// answered with a 400, not silently ignored. The parser exists for that
// endpoint, so it is deliberately small:
//
//   * Strict RFC 8259 subset: null/true/false, numbers, strings
//     (including \uXXXX escapes with surrogate pairs, re-encoded as
//     UTF-8), arrays, objects. No comments, no trailing commas, no
//     NaN/Infinity literals.
//   * One pass, no allocations beyond the value tree itself.
//   * Every failure throws JsonError carrying the byte offset, so the
//     endpoint's 400 body can point at the problem.
//   * A nesting-depth cap (default 64) bounds recursion on adversarial
//     input — the HTTP layer already caps body size.
//
// Object members keep their source order (vector of pairs, not a map):
// callers that care about duplicates can see them, and `find` returns
// the first match like every mainstream parser.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace confcall::support {

/// Parse or access error; `offset` is the byte position in the input
/// where parsing failed (0 for type-mismatch accessor errors).
class JsonError : public std::runtime_error {
 public:
  JsonError(const std::string& message, std::size_t offset)
      : std::runtime_error(message), offset_(offset) {}

  [[nodiscard]] std::size_t offset() const noexcept { return offset_; }

 private:
  std::size_t offset_;
};

/// One parsed JSON value. Default-constructed = null.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<JsonValue>;
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  /// Parses exactly one JSON document; trailing non-whitespace is an
  /// error. Throws JsonError (with byte offset) on malformed input or
  /// nesting deeper than `max_depth`.
  [[nodiscard]] static JsonValue parse(std::string_view text,
                                       std::size_t max_depth = 64);

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_null() const noexcept { return type_ == Type::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return type_ == Type::kBool; }
  [[nodiscard]] bool is_number() const noexcept {
    return type_ == Type::kNumber;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return type_ == Type::kString;
  }
  [[nodiscard]] bool is_array() const noexcept {
    return type_ == Type::kArray;
  }
  [[nodiscard]] bool is_object() const noexcept {
    return type_ == Type::kObject;
  }

  /// Typed accessors throw JsonError on type mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  /// First object member named `key`, or nullptr when absent. Throws
  /// JsonError when this value is not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

  /// Builders (used by the parser; handy in tests).
  static JsonValue make_null() { return JsonValue(); }
  static JsonValue make_bool(bool value);
  static JsonValue make_number(double value);
  static JsonValue make_string(std::string value);
  static JsonValue make_array(Array value);
  static JsonValue make_object(Object value);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Escapes `text` for embedding inside a JSON string literal (quotes,
/// backslashes, control characters). Used by handlers that hand-build
/// small JSON error bodies.
[[nodiscard]] std::string json_escape(std::string_view text);

}  // namespace confcall::support
