// Fixed-size worker pool for deterministic data parallelism.
//
// The pool exists to parallelize embarrassingly-parallel work (Monte-Carlo
// shards, simulation replications, per-area planning) WITHOUT giving up
// reproducibility: parallel_for deals task indices out atomically, the
// caller derives any per-task randomness from the task INDEX (see
// prob::Rng::substream), and results are written to index-addressed slots
// and merged in index order. Under that discipline the output is
// bit-identical for every thread count, including 1.
//
// The calling thread participates in the work, so a pool of size 1 runs
// everything inline with zero synchronization overhead beyond an atomic
// fetch_add per task, and a pool is usable (if pointless) on a one-core
// machine.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace confcall::support {

/// Resolves a requested thread count: 0 means "all hardware threads"
/// (std::thread::hardware_concurrency, itself clamped to >= 1).
[[nodiscard]] std::size_t resolve_threads(std::size_t requested) noexcept;

/// A blocking fork-join pool. Threads are spawned per parallel_for call
/// and joined before it returns — the pool holds no background state, so
/// a ThreadPool member never outlives its tasks and TSan sees a clean
/// happens-before edge at every join. For the call counts this library
/// cares about (dozens of parallel_for invocations per process, each
/// running milliseconds to seconds of work) spawn cost is noise.
class ThreadPool {
 public:
  /// `num_threads` = 0 picks the hardware concurrency.
  explicit ThreadPool(std::size_t num_threads = 0)
      : num_threads_(resolve_threads(num_threads)) {}

  [[nodiscard]] std::size_t size() const noexcept { return num_threads_; }

  /// Runs fn(0), fn(1), ..., fn(num_tasks - 1), each exactly once, on up
  /// to size() threads (the caller included), and blocks until all have
  /// finished. Task order across threads is unspecified; callers must not
  /// rely on it. The first exception thrown by any task is captured and
  /// rethrown on the calling thread after every worker has joined.
  void parallel_for(std::size_t num_tasks,
                    const std::function<void(std::size_t)>& fn) const;

 private:
  std::size_t num_threads_;
};

}  // namespace confcall::support
