#include "support/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cerrno>
#include <cstring>
#include <ctime>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <utility>

#include "support/metrics.h"
#include "support/slo_controller.h"
#include "support/trace.h"

namespace confcall::support {
namespace {

constexpr int kStopSentinel = -1;

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

// Applies the remaining read budget as the socket receive timeout, so a
// blocked recv wakes up in time to notice the expired deadline.
void arm_recv_timeout(int fd, std::uint64_t remaining_ns) {
  timeval tv{};
  // At least 1 ms so a nearly-expired deadline still sets a real timeout
  // instead of "block forever" (tv == 0).
  const std::uint64_t us = std::max<std::uint64_t>(remaining_ns / 1000, 1000);
  tv.tv_sec = static_cast<time_t>(us / 1'000'000);
  tv.tv_usec = static_cast<suseconds_t>(us % 1'000'000);
  (void)setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

void arm_send_timeout(int fd, std::uint64_t budget_ns) {
  timeval tv{};
  const std::uint64_t us = std::max<std::uint64_t>(budget_ns / 1000, 1000);
  tv.tv_sec = static_cast<time_t>(us / 1'000'000);
  tv.tv_usec = static_cast<suseconds_t>(us % 1'000'000);
  (void)setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

// Returns false when the peer stopped reading (EPIPE/ECONNRESET/send
// timeout) — the caller counts it; there is nobody left to answer.
// MSG_NOSIGNAL keeps a dead peer an errno, never a SIGPIPE.
[[nodiscard]] bool send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;  // signal, not failure: retry
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

std::string render_response(const HttpResponse& response) {
  std::ostringstream os;
  os << "HTTP/1.1 " << response.status << ' '
     << http_status_reason(response.status) << "\r\n"
     << "Content-Type: " << response.content_type << "\r\n"
     << "Content-Length: " << response.body.size() << "\r\n"
     << "Connection: close\r\n\r\n"
     << response.body;
  return os.str();
}

[[nodiscard]] bool send_response(int fd, const HttpResponse& response) {
  return send_all(fd, render_response(response));
}

HttpResponse plain_status(int status, const std::string& body) {
  HttpResponse response;
  response.status = status;
  response.body = body + "\n";
  return response;
}

// Strict Content-Length: decimal digits only, no sign, no whitespace,
// no trailing junk, bounded width. std::stoul would accept "+5", " 5"
// and "5x" — exactly the ambiguity request-smuggling rides on.
[[nodiscard]] bool parse_content_length(const std::string& text,
                                        std::size_t* out) {
  if (text.empty() || text.size() > 19) return false;
  std::size_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::size_t>(c - '0');
  }
  *out = value;
  return true;
}

/// Reads one request; returns false (with `error` filled) on a
/// malformed, oversized or timed-out request.
bool read_request(int fd, const HttpServerOptions& options,
                  HttpRequest* request, HttpResponse* error) {
  const Deadline deadline =
      Deadline::after(options.read_deadline_ns, SteadyClockSource::shared());
  std::string buffer;
  std::size_t header_end = std::string::npos;
  char chunk[4096];
  while (true) {
    const std::uint64_t remaining =
        deadline.remaining_ns(SteadyClockSource::shared());
    if (remaining == 0) {
      *error = plain_status(408, "request read deadline exceeded");
      return false;
    }
    arm_recv_timeout(fd, remaining);
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
        continue;  // timeout slice elapsed; the deadline check decides
      }
      *error = plain_status(400, "read error");
      return false;
    }
    if (n == 0) {  // client closed before a full request
      *error = plain_status(400, "connection closed mid-request");
      return false;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
    if (buffer.size() > options.max_request_bytes) {
      // Before the blank line this is a runaway header block (431);
      // after it, body bytes pushed past the cap (413).
      *error = header_end == std::string::npos
                   ? plain_status(431, "header block too large")
                   : plain_status(413, "request body too large");
      return false;
    }
    if (header_end == std::string::npos) {
      header_end = buffer.find("\r\n\r\n");
      if (header_end == std::string::npos) continue;
    }
    // Headers complete: parse enough to know the body length.
    std::istringstream head(buffer.substr(0, header_end));
    std::string request_line;
    std::getline(head, request_line);
    if (!request_line.empty() && request_line.back() == '\r') {
      request_line.pop_back();
    }
    std::istringstream rl(request_line);
    std::string target;
    std::string version;
    if (!(rl >> request->method >> target >> version) ||
        version.rfind("HTTP/1.", 0) != 0) {
      *error = plain_status(400, "malformed request line");
      return false;
    }
    request->headers.clear();
    std::string line;
    while (std::getline(head, line)) {
      if (!line.empty() && line.back() == '\r') line.pop_back();
      const std::size_t colon = line.find(':');
      if (colon == std::string::npos) continue;
      request->headers.emplace_back(lower(trim(line.substr(0, colon))),
                                    trim(line.substr(colon + 1)));
    }
    const std::size_t query_pos = target.find('?');
    request->path = target.substr(0, query_pos);
    request->query = query_pos == std::string::npos
                         ? std::string{}
                         : target.substr(query_pos + 1);
    // Missing Content-Length means an empty body (every scraper GET and
    // the bodyless curl -X POST smoke path); a present but non-numeric
    // one is malformed, not zero.
    std::size_t content_length = 0;
    const std::string length_header = request->header("content-length");
    if (!length_header.empty() &&
        !parse_content_length(length_header, &content_length)) {
      *error = plain_status(400, "bad Content-Length");
      return false;
    }
    if (content_length > options.max_request_bytes ||
        header_end + 4 + content_length > options.max_request_bytes) {
      // The headers fit; the declared payload does not. Reject from the
      // declaration alone — never read a body the cap already rules out.
      *error = plain_status(413, "request body too large");
      return false;
    }
    if (buffer.size() >= header_end + 4 + content_length) {
      request->body = buffer.substr(header_end + 4, content_length);
      return true;
    }
    // else: keep reading body bytes under the same deadline
  }
}

}  // namespace

std::string HttpRequest::header(const std::string& name) const {
  const std::string needle = lower(name);
  for (const auto& [key, value] : headers) {
    if (key == needle) return value;
  }
  return {};
}

const char* http_status_reason(int status) noexcept {
  switch (status) {
    case 200: return "OK";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

void HttpServerOptions::validate() const {
  if (workers == 0) {
    throw std::invalid_argument("HttpServerOptions: workers must be >= 1");
  }
  if (max_pending_connections == 0) {
    throw std::invalid_argument(
        "HttpServerOptions: max_pending_connections must be >= 1");
  }
  if (read_deadline_ns == 0) {
    throw std::invalid_argument(
        "HttpServerOptions: read_deadline_ns must be >= 1");
  }
  if (max_request_bytes == 0) {
    throw std::invalid_argument(
        "HttpServerOptions: max_request_bytes must be >= 1");
  }
}

HttpServer::HttpServer(HttpServerOptions options)
    : options_(std::move(options)) {
  options_.validate();
  pending_.reserve(options_.max_pending_connections);
}

HttpServer::~HttpServer() { stop(); }

void HttpServer::handle(const std::string& method, const std::string& path,
                        Handler handler) {
  if (running_) {
    throw std::logic_error("HttpServer: register routes before start()");
  }
  routes_[{method, path}] = std::move(handler);
}

void HttpServer::start() {
  if (running_) throw std::logic_error("HttpServer: already started");

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("HttpServer: socket");
  const int one = 1;
  (void)setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(fd);
    throw std::runtime_error("HttpServer: bad bind address '" +
                             options_.bind_address + "'");
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    throw_errno("HttpServer: bind");
  }
  if (::listen(fd, 16) != 0) {
    ::close(fd);
    throw_errno("HttpServer: listen");
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    ::close(fd);
    throw_errno("HttpServer: getsockname");
  }
  port_ = ntohs(bound.sin_port);
  listen_fd_.store(fd);

  running_ = true;
  // One parallel_for hosts the whole server: task 0 is the blocking
  // accept loop, tasks 1..workers serve connections. The pool is sized
  // so every task runs concurrently; the hosting thread participates as
  // one of them and parallel_for's join IS the server shutdown barrier.
  const std::size_t tasks = options_.workers + 1;
  pool_thread_ = std::thread([this, tasks] {
    const ThreadPool pool(tasks);
    pool.parallel_for(tasks, [this](std::size_t task) {
      if (task == 0) {
        accept_loop();
      } else {
        worker_loop();
      }
    });
  });
}

void HttpServer::stop() {
  if (!running_) return;
  running_ = false;
  // Closing the listener unblocks accept(); the acceptor then enqueues
  // one stop sentinel per worker BEHIND any accepted connections, so the
  // drain is graceful: everything accepted before stop() is still
  // served.
  const int fd = listen_fd_.exchange(-1);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
  queue_cv_.notify_all();
  if (pool_thread_.joinable()) pool_thread_.join();
  port_ = 0;
}

void HttpServer::accept_loop() {
  while (true) {
    const int lfd = listen_fd_.load();
    if (lfd < 0) break;
    const int fd = ::accept(lfd, nullptr, nullptr);
    if (fd < 0) {
      if (running_ && (errno == EINTR || errno == ECONNABORTED)) continue;
      break;  // listener closed: shutting down
    }
    bool shed = false;
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      if (pending_.size() >= options_.max_pending_connections) {
        shed = true;
      } else {
        pending_.push_back(fd);
      }
    }
    if (shed) {
      connections_shed_.fetch_add(1, std::memory_order_relaxed);
      reject_queue_full_.inc();
      arm_send_timeout(fd, options_.read_deadline_ns);
      if (!send_response(fd, plain_status(503, "connection queue full"))) {
        send_failed_metric_.inc();
      }
      ::close(fd);
    } else {
      queue_cv_.notify_one();
    }
  }
  // Drain barrier: one sentinel per worker, queued after every accepted
  // connection.
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    for (std::size_t i = 0; i < options_.workers; ++i) {
      pending_.push_back(kStopSentinel);
    }
  }
  queue_cv_.notify_all();
}

void HttpServer::worker_loop() {
  while (true) {
    int fd = kStopSentinel;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] { return !pending_.empty(); });
      fd = pending_.front();
      pending_.erase(pending_.begin());
    }
    if (fd == kStopSentinel) return;
    serve_connection(fd);
  }
}

void HttpServer::serve_connection(int fd) {
  arm_send_timeout(fd, options_.read_deadline_ns);
  HttpRequest request;
  HttpResponse error;
  if (!read_request(fd, options_, &request, &error)) {
    count_rejection(error.status);
    if (!send_response(fd, error)) send_failed_metric_.inc();
    ::close(fd);
    return;
  }
  HttpResponse response;
  const auto route = routes_.find({request.method, request.path});
  if (route != routes_.end()) {
    try {
      response = route->second(request);
    } catch (const std::exception& e) {
      response = plain_status(500, std::string("handler error: ") + e.what());
    }
  } else {
    // Exact path under another method -> 405, unknown path -> 404.
    bool path_known = false;
    for (const auto& [key, handler] : routes_) {
      (void)handler;
      if (key.second == request.path) {
        path_known = true;
        break;
      }
    }
    response = path_known ? plain_status(405, "method not allowed")
                          : plain_status(404, "not found");
  }
  requests_served_.fetch_add(1, std::memory_order_relaxed);
  if (!send_response(fd, response)) send_failed_metric_.inc();
  ::close(fd);
}

void HttpServer::count_rejection(int status) const noexcept {
  switch (status) {
    case 400: reject_malformed_.inc(); break;
    case 408: reject_slow_client_.inc(); break;
    case 413: reject_body_too_large_.inc(); break;
    case 431: reject_header_too_large_.inc(); break;
    case 503: reject_queue_full_.inc(); break;
    default: break;
  }
}

void HttpServer::bind_metrics(MetricRegistry& registry) {
  if (running_) {
    throw std::logic_error("HttpServer: bind_metrics before start()");
  }
  const std::string help =
      "Hostile or malformed connections rejected at the protocol layer, "
      "by reject class";
  reject_malformed_ = registry.counter("confcall_http_rejections_total",
                                       help, {{"class", "malformed"}});
  reject_slow_client_ = registry.counter("confcall_http_rejections_total",
                                         help, {{"class", "slow_client"}});
  reject_body_too_large_ = registry.counter(
      "confcall_http_rejections_total", help, {{"class", "body_too_large"}});
  reject_header_too_large_ =
      registry.counter("confcall_http_rejections_total", help,
                       {{"class", "header_too_large"}});
  reject_queue_full_ = registry.counter("confcall_http_rejections_total",
                                        help, {{"class", "queue_full"}});
  send_failed_metric_ = registry.counter(
      "confcall_http_send_failed_total",
      "Responses the peer stopped reading mid-write (EPIPE, ECONNRESET "
      "or send timeout on a half-written response)");
}

const char* readiness_name(Readiness state) noexcept {
  switch (state) {
    case Readiness::kStarting: return "starting";
    case Readiness::kRestoring: return "restoring";
    case Readiness::kWarmup: return "warmup";
    case Readiness::kReady: return "ready";
    case Readiness::kDraining: return "draining";
  }
  return "?";
}

void install_observability_routes(HttpServer& server, MetricRegistry* registry,
                                  Tracer* tracer,
                                  AdmissionController* admission,
                                  SloController* slo,
                                  ReadinessGate* readiness,
                                  ObservabilityOptions options) {
  if (registry == nullptr) {
    throw std::invalid_argument(
        "install_observability_routes: registry is required");
  }
  const Gauge scrape_bytes = registry->gauge(
      "confcall_scrape_bytes",
      "Payload size of the PREVIOUS /metrics scrape (label-cardinality "
      "growth shows up here first; 0 until the second scrape)");
  // The gauge is set from the previous scrape's size BEFORE rendering,
  // never after: setting it post-render would make every in-process
  // to_prometheus(snapshot()) taken after a scrape disagree with that
  // scrape's body by exactly this gauge — breaking the E16 byte-identity
  // contract. One scrape of lag is the price of self-consistency.
  const auto last_scrape_bytes = std::make_shared<std::atomic<std::size_t>>(0);
  const PrometheusOptions exposition{options.exemplars};
  server.handle("GET", "/metrics",
                [registry, scrape_bytes, last_scrape_bytes,
                 exposition](const HttpRequest&) {
    scrape_bytes.set(static_cast<double>(
        last_scrape_bytes->load(std::memory_order_relaxed)));
    HttpResponse response;
    // One consistent cut: the scrape is byte-identical to what an
    // in-process to_prometheus(snapshot()) at the same instant renders
    // (the E16 gate).
    response.body = to_prometheus(registry->snapshot(), exposition);
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    last_scrape_bytes->store(response.body.size(),
                             std::memory_order_relaxed);
    return response;
  });
  server.handle("GET", "/vars", [registry](const HttpRequest&) {
    HttpResponse response;
    response.body = to_json(registry->snapshot());
    response.content_type = "application/json";
    return response;
  });
  server.handle("GET", "/healthz", [admission, slo](const HttpRequest&) {
    Health health = Health::kHealthy;
    if (admission != nullptr) health = admission->health();
    const SloHealth verdict =
        slo == nullptr ? SloHealth::kOk : slo->slo_health();
    HttpResponse response;
    // Proactive health: a degrading verdict (projected breach) already
    // drains traffic, so the flip happens BEFORE the SLO is broken.
    response.status =
        health == Health::kShedding || verdict != SloHealth::kOk ? 503 : 200;
    response.content_type = "application/json";
    std::ostringstream os;
    os << "{\"health\": \"" << health_name(health) << "\"";
    if (slo != nullptr) {
      os << ", \"slo\": {\"state\": \"" << slo_health_name(verdict)
         << "\", \"target_p99_ms\": "
         << static_cast<double>(slo->target_p99_ns()) * 1e-6
         << ", \"observed_p99_ms\": "
         << static_cast<double>(slo->observed_p99_ns()) * 1e-6
         << ", \"window_shed_fraction\": " << slo->shed_fraction() << "}";
    }
    os << "}\n";
    response.body = os.str();
    return response;
  });
  server.handle("GET", "/readyz",
                [readiness, detail = std::move(options.readyz_detail)](
                    const HttpRequest&) {
    // Readiness, not liveness: /healthz says "the process is sound",
    // this says "send me traffic". A warm restart keeps /readyz at 503
    // through restore and warmup while /healthz is already 200.
    const Readiness state =
        readiness == nullptr ? Readiness::kReady : readiness->state();
    HttpResponse response;
    response.status = state == Readiness::kReady ? 200 : 503;
    response.content_type = "application/json";
    std::string body = std::string("{\"ready\": ") +
                       (state == Readiness::kReady ? "true" : "false") +
                       ", \"state\": \"" + readiness_name(state) + "\"";
    if (detail) {
      // Caller-supplied members (the fleet daemon's per-area restore /
      // warmup progress), rendered fresh per request.
      const std::string extra = detail();
      if (!extra.empty()) body += ", " + extra;
    }
    body += "}\n";
    response.body = std::move(body);
    return response;
  });
  server.handle("GET", "/traces", [tracer](const HttpRequest&) {
    HttpResponse response;
    response.body = to_trace_event_json(
        tracer == nullptr ? std::vector<SpanRecord>{} : tracer->snapshot());
    response.content_type = "application/json";
    return response;
  });
}

HttpClientResponse http_request(const std::string& host, std::uint16_t port,
                                const std::string& method,
                                const std::string& target,
                                const std::string& body,
                                std::uint64_t timeout_ns) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("http_request: socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("http_request: bad host '" + host + "'");
  }
  arm_recv_timeout(fd, timeout_ns);
  arm_send_timeout(fd, timeout_ns);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    throw_errno("http_request: connect");
  }
  std::ostringstream os;
  os << method << ' ' << target << " HTTP/1.1\r\n"
     << "Host: " << host << "\r\n"
     << "Content-Length: " << body.size() << "\r\n"
     << "Connection: close\r\n\r\n"
     << body;
  const std::string request = os.str();
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent,
                             request.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      ::close(fd);
      throw_errno("http_request: send");
    }
    sent += static_cast<std::size_t>(n);
  }
  std::string raw;
  char chunk[4096];
  const Deadline deadline =
      Deadline::after(timeout_ns, SteadyClockSource::shared());
  while (true) {
    if (deadline.expired(SteadyClockSource::shared())) {
      ::close(fd);
      throw std::runtime_error("http_request: response timeout");
    }
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      throw_errno("http_request: recv");
    }
    if (n == 0) break;  // server closed: response complete
    raw.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);

  HttpClientResponse response;
  const std::size_t head_end = raw.find("\r\n\r\n");
  if (head_end == std::string::npos || raw.rfind("HTTP/1.", 0) != 0) {
    throw std::runtime_error("http_request: malformed response");
  }
  const std::size_t space = raw.find(' ');
  response.status = std::stoi(raw.substr(space + 1));
  response.body = raw.substr(head_end + 4);
  return response;
}

HttpClientResponse http_get(const std::string& host, std::uint16_t port,
                            const std::string& target,
                            std::uint64_t timeout_ns) {
  return http_request(host, port, "GET", target, "", timeout_ns);
}

const char* socket_fault_class_name(SocketFaultClass fault) noexcept {
  switch (fault) {
    case SocketFaultClass::kTornWrite: return "torn_write";
    case SocketFaultClass::kMidBodyDisconnect: return "mid_body_disconnect";
    case SocketFaultClass::kSlowLorisHeaders: return "slow_loris_headers";
    case SocketFaultClass::kOversizedHeaders: return "oversized_headers";
    case SocketFaultClass::kOversizedBody: return "oversized_body";
    case SocketFaultClass::kGarbagePipelining: return "garbage_pipelining";
  }
  return "?";
}

namespace {

// Reads whatever the server answers until EOF or the deadline; fills
// status (when the bytes parse as an HTTP status line), raw, and
// clean_close (an orderly FIN, not an error or injector timeout).
void drain_reaction(int fd, const Deadline& deadline,
                    SocketFaultInjector::Outcome* outcome) {
  char chunk[4096];
  while (true) {
    const std::uint64_t remaining =
        deadline.remaining_ns(SteadyClockSource::shared());
    if (remaining == 0) break;  // server never reacted within patience
    arm_recv_timeout(fd, remaining);
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) continue;  // re-check
      // ECONNRESET and friends: not a clean close, but bytes already
      // drained (a response followed by a reset — the flood classes,
      // where the server closes on unread abuse) still parse below.
      break;
    }
    if (n == 0) {
      outcome->clean_close = true;
      break;
    }
    outcome->raw.append(chunk, static_cast<std::size_t>(n));
  }
  if (outcome->raw.rfind("HTTP/1.", 0) == 0) {
    const std::size_t space = outcome->raw.find(' ');
    if (space != std::string::npos && space + 4 <= outcome->raw.size()) {
      int status = 0;
      bool digits = true;
      for (std::size_t i = space + 1; i < space + 4; ++i) {
        const char c = outcome->raw[i];
        if (c < '0' || c > '9') {
          digits = false;
          break;
        }
        status = status * 10 + (c - '0');
      }
      if (digits) outcome->status = status;
    }
  }
}

// Best-effort send that never throws: the server closing on us
// mid-abuse is a reaction, not an injector failure.
bool send_ignoring_failure(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

// True when response bytes are already waiting (the server reacted
// while the injector was still misbehaving).
bool reaction_pending(int fd) {
  char probe;
  const ssize_t n = ::recv(fd, &probe, 1, MSG_PEEK | MSG_DONTWAIT);
  if (n > 0) return true;
  if (n == 0) return true;  // orderly close is a reaction too
  return errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR;
}

}  // namespace

std::uint64_t SocketFaultInjector::next_u64() noexcept {
  // splitmix64: tiny, seedable, and good enough to vary cut points and
  // garbage bytes deterministically.
  state_ += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

SocketFaultInjector::Outcome SocketFaultInjector::run(
    const std::string& host, std::uint16_t port, SocketFaultClass fault,
    std::uint64_t patience_ns) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("SocketFaultInjector: socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("SocketFaultInjector: bad host '" + host + "'");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    throw_errno("SocketFaultInjector: connect");
  }
  arm_send_timeout(fd, patience_ns);
  const Deadline deadline =
      Deadline::after(patience_ns, SteadyClockSource::shared());

  Outcome outcome;
  switch (fault) {
    case SocketFaultClass::kTornWrite: {
      // A complete, valid POST cut at a random interior byte, then a
      // half-close: the server sees EOF mid-request -> 400.
      std::string body(32, 'x');
      const std::string request =
          "POST /locate HTTP/1.1\r\nHost: h\r\nContent-Length: " +
          std::to_string(body.size()) + "\r\n\r\n" + body;
      const std::size_t cut =
          1 + static_cast<std::size_t>(next_u64() % (request.size() - 1));
      (void)send_ignoring_failure(fd,
                                  std::string_view(request).substr(0, cut));
      (void)::shutdown(fd, SHUT_WR);
      break;
    }
    case SocketFaultClass::kMidBodyDisconnect: {
      // Headers promise 64 body bytes; a random short prefix arrives,
      // then EOF -> 400.
      const std::size_t sent_bytes =
          static_cast<std::size_t>(next_u64() % 32);
      std::string partial;
      for (std::size_t i = 0; i < sent_bytes; ++i) {
        partial.push_back(static_cast<char>('a' + (next_u64() % 26)));
      }
      (void)send_ignoring_failure(
          fd,
          "POST /locate HTTP/1.1\r\nHost: h\r\nContent-Length: 64\r\n\r\n" +
              partial);
      (void)::shutdown(fd, SHUT_WR);
      break;
    }
    case SocketFaultClass::kSlowLorisHeaders: {
      // One byte at a time, never finishing the header block, until the
      // server's read deadline answers 408 (or patience runs out).
      std::string drip = "GET / HTTP/1.1\r\n";
      while (!deadline.expired(SteadyClockSource::shared())) {
        if (reaction_pending(fd)) break;
        if (drip.empty()) {
          drip = "X-Slow-" +
                 std::to_string(next_u64() % 1000) + ": trickle\r\n";
        }
        if (!send_ignoring_failure(fd, std::string_view(&drip[0], 1))) {
          break;  // server gave up on us — go read its parting words
        }
        drip.erase(0, 1);
        timespec nap{0, 1'000'000};  // 1 ms between bytes
        (void)::nanosleep(&nap, nullptr);
      }
      break;
    }
    case SocketFaultClass::kOversizedHeaders: {
      // A header block that never ends, shipped in chunks until the
      // server's size cap answers 431. Stop the moment it reacts so its
      // response is read before any RST can discard it.
      (void)send_ignoring_failure(fd, "GET / HTTP/1.1\r\nHost: h\r\n");
      const std::string filler_line =
          "X-Filler: " + std::string(4000, 'f') + "\r\n";
      // 1024 lines ~ 4 MB, far past any configured cap.
      for (int i = 0; i < 1024; ++i) {
        if (reaction_pending(fd)) break;
        if (!send_ignoring_failure(fd, filler_line)) break;
        if (deadline.expired(SteadyClockSource::shared())) break;
      }
      break;
    }
    case SocketFaultClass::kOversizedBody: {
      // Honest headers declaring a payload past any sane cap; the
      // server must reject from the declaration alone (413), never
      // swallow gigabytes first. No body byte is ever sent.
      (void)send_ignoring_failure(
          fd,
          "POST /locate HTTP/1.1\r\nHost: h\r\n"
          "Content-Length: 1073741824\r\n\r\n");
      break;
    }
    case SocketFaultClass::kGarbagePipelining: {
      // A garbage request line (random bytes, no CR/LF) terminated like
      // a real header block, with a second request pipelined behind it:
      // the garbage earns 400 and the connection closes (one request
      // per connection), so the pipelined request must never be served.
      std::string garbage;
      for (int i = 0; i < 64; ++i) {
        garbage.push_back(
            static_cast<char>('!' + (next_u64() % 94)));  // printable
      }
      garbage += "\r\n\r\n";
      garbage += "GET /metrics HTTP/1.1\r\nHost: h\r\n\r\n";
      (void)send_ignoring_failure(fd, garbage);
      (void)::shutdown(fd, SHUT_WR);
      break;
    }
  }

  drain_reaction(fd, deadline, &outcome);
  ::close(fd);
  return outcome;
}

}  // namespace confcall::support
