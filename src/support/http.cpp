#include "support/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstring>
#include <sstream>
#include <stdexcept>

#include "support/metrics.h"
#include "support/slo_controller.h"
#include "support/trace.h"

namespace confcall::support {
namespace {

constexpr int kStopSentinel = -1;

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

// Applies the remaining read budget as the socket receive timeout, so a
// blocked recv wakes up in time to notice the expired deadline.
void arm_recv_timeout(int fd, std::uint64_t remaining_ns) {
  timeval tv{};
  // At least 1 ms so a nearly-expired deadline still sets a real timeout
  // instead of "block forever" (tv == 0).
  const std::uint64_t us = std::max<std::uint64_t>(remaining_ns / 1000, 1000);
  tv.tv_sec = static_cast<time_t>(us / 1'000'000);
  tv.tv_usec = static_cast<suseconds_t>(us % 1'000'000);
  (void)setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

void arm_send_timeout(int fd, std::uint64_t budget_ns) {
  timeval tv{};
  const std::uint64_t us = std::max<std::uint64_t>(budget_ns / 1000, 1000);
  tv.tv_sec = static_cast<time_t>(us / 1'000'000);
  tv.tv_usec = static_cast<suseconds_t>(us % 1'000'000);
  (void)setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

void send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) return;  // client went away or timed out; nothing to do
    sent += static_cast<std::size_t>(n);
  }
}

std::string render_response(const HttpResponse& response) {
  std::ostringstream os;
  os << "HTTP/1.1 " << response.status << ' '
     << http_status_reason(response.status) << "\r\n"
     << "Content-Type: " << response.content_type << "\r\n"
     << "Content-Length: " << response.body.size() << "\r\n"
     << "Connection: close\r\n\r\n"
     << response.body;
  return os.str();
}

void send_response(int fd, const HttpResponse& response) {
  send_all(fd, render_response(response));
}

HttpResponse plain_status(int status, const std::string& body) {
  HttpResponse response;
  response.status = status;
  response.body = body + "\n";
  return response;
}

/// Reads one request; returns false (with `error` filled) on a
/// malformed, oversized or timed-out request.
bool read_request(int fd, const HttpServerOptions& options,
                  HttpRequest* request, HttpResponse* error) {
  const Deadline deadline =
      Deadline::after(options.read_deadline_ns, SteadyClockSource::shared());
  std::string buffer;
  std::size_t header_end = std::string::npos;
  char chunk[4096];
  while (true) {
    const std::uint64_t remaining =
        deadline.remaining_ns(SteadyClockSource::shared());
    if (remaining == 0) {
      *error = plain_status(408, "request read deadline exceeded");
      return false;
    }
    arm_recv_timeout(fd, remaining);
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
        continue;  // timeout slice elapsed; the deadline check decides
      }
      *error = plain_status(400, "read error");
      return false;
    }
    if (n == 0) {  // client closed before a full request
      *error = plain_status(400, "connection closed mid-request");
      return false;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
    if (buffer.size() > options.max_request_bytes) {
      *error = plain_status(431, "request too large");
      return false;
    }
    if (header_end == std::string::npos) {
      header_end = buffer.find("\r\n\r\n");
      if (header_end == std::string::npos) continue;
    }
    // Headers complete: parse enough to know the body length.
    std::istringstream head(buffer.substr(0, header_end));
    std::string request_line;
    std::getline(head, request_line);
    if (!request_line.empty() && request_line.back() == '\r') {
      request_line.pop_back();
    }
    std::istringstream rl(request_line);
    std::string target;
    std::string version;
    if (!(rl >> request->method >> target >> version) ||
        version.rfind("HTTP/1.", 0) != 0) {
      *error = plain_status(400, "malformed request line");
      return false;
    }
    request->headers.clear();
    std::string line;
    while (std::getline(head, line)) {
      if (!line.empty() && line.back() == '\r') line.pop_back();
      const std::size_t colon = line.find(':');
      if (colon == std::string::npos) continue;
      request->headers.emplace_back(lower(trim(line.substr(0, colon))),
                                    trim(line.substr(colon + 1)));
    }
    const std::size_t query_pos = target.find('?');
    request->path = target.substr(0, query_pos);
    request->query = query_pos == std::string::npos
                         ? std::string{}
                         : target.substr(query_pos + 1);
    std::size_t content_length = 0;
    const std::string length_header = request->header("content-length");
    if (!length_header.empty()) {
      try {
        content_length = std::stoul(length_header);
      } catch (const std::exception&) {
        *error = plain_status(400, "bad Content-Length");
        return false;
      }
    }
    if (header_end + 4 + content_length > options.max_request_bytes) {
      *error = plain_status(431, "request too large");
      return false;
    }
    if (buffer.size() >= header_end + 4 + content_length) {
      request->body = buffer.substr(header_end + 4, content_length);
      return true;
    }
    // else: keep reading body bytes under the same deadline
  }
}

}  // namespace

std::string HttpRequest::header(const std::string& name) const {
  const std::string needle = lower(name);
  for (const auto& [key, value] : headers) {
    if (key == needle) return value;
  }
  return {};
}

const char* http_status_reason(int status) noexcept {
  switch (status) {
    case 200: return "OK";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

void HttpServerOptions::validate() const {
  if (workers == 0) {
    throw std::invalid_argument("HttpServerOptions: workers must be >= 1");
  }
  if (max_pending_connections == 0) {
    throw std::invalid_argument(
        "HttpServerOptions: max_pending_connections must be >= 1");
  }
  if (read_deadline_ns == 0) {
    throw std::invalid_argument(
        "HttpServerOptions: read_deadline_ns must be >= 1");
  }
  if (max_request_bytes == 0) {
    throw std::invalid_argument(
        "HttpServerOptions: max_request_bytes must be >= 1");
  }
}

HttpServer::HttpServer(HttpServerOptions options)
    : options_(std::move(options)) {
  options_.validate();
  pending_.reserve(options_.max_pending_connections);
}

HttpServer::~HttpServer() { stop(); }

void HttpServer::handle(const std::string& method, const std::string& path,
                        Handler handler) {
  if (running_) {
    throw std::logic_error("HttpServer: register routes before start()");
  }
  routes_[{method, path}] = std::move(handler);
}

void HttpServer::start() {
  if (running_) throw std::logic_error("HttpServer: already started");

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("HttpServer: socket");
  const int one = 1;
  (void)setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(fd);
    throw std::runtime_error("HttpServer: bad bind address '" +
                             options_.bind_address + "'");
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    throw_errno("HttpServer: bind");
  }
  if (::listen(fd, 16) != 0) {
    ::close(fd);
    throw_errno("HttpServer: listen");
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    ::close(fd);
    throw_errno("HttpServer: getsockname");
  }
  port_ = ntohs(bound.sin_port);
  listen_fd_.store(fd);

  running_ = true;
  // One parallel_for hosts the whole server: task 0 is the blocking
  // accept loop, tasks 1..workers serve connections. The pool is sized
  // so every task runs concurrently; the hosting thread participates as
  // one of them and parallel_for's join IS the server shutdown barrier.
  const std::size_t tasks = options_.workers + 1;
  pool_thread_ = std::thread([this, tasks] {
    const ThreadPool pool(tasks);
    pool.parallel_for(tasks, [this](std::size_t task) {
      if (task == 0) {
        accept_loop();
      } else {
        worker_loop();
      }
    });
  });
}

void HttpServer::stop() {
  if (!running_) return;
  running_ = false;
  // Closing the listener unblocks accept(); the acceptor then enqueues
  // one stop sentinel per worker BEHIND any accepted connections, so the
  // drain is graceful: everything accepted before stop() is still
  // served.
  const int fd = listen_fd_.exchange(-1);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
  queue_cv_.notify_all();
  if (pool_thread_.joinable()) pool_thread_.join();
  port_ = 0;
}

void HttpServer::accept_loop() {
  while (true) {
    const int lfd = listen_fd_.load();
    if (lfd < 0) break;
    const int fd = ::accept(lfd, nullptr, nullptr);
    if (fd < 0) {
      if (running_ && (errno == EINTR || errno == ECONNABORTED)) continue;
      break;  // listener closed: shutting down
    }
    bool shed = false;
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      if (pending_.size() >= options_.max_pending_connections) {
        shed = true;
      } else {
        pending_.push_back(fd);
      }
    }
    if (shed) {
      connections_shed_.fetch_add(1, std::memory_order_relaxed);
      arm_send_timeout(fd, options_.read_deadline_ns);
      send_response(fd, plain_status(503, "connection queue full"));
      ::close(fd);
    } else {
      queue_cv_.notify_one();
    }
  }
  // Drain barrier: one sentinel per worker, queued after every accepted
  // connection.
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    for (std::size_t i = 0; i < options_.workers; ++i) {
      pending_.push_back(kStopSentinel);
    }
  }
  queue_cv_.notify_all();
}

void HttpServer::worker_loop() {
  while (true) {
    int fd = kStopSentinel;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] { return !pending_.empty(); });
      fd = pending_.front();
      pending_.erase(pending_.begin());
    }
    if (fd == kStopSentinel) return;
    serve_connection(fd);
  }
}

void HttpServer::serve_connection(int fd) {
  arm_send_timeout(fd, options_.read_deadline_ns);
  HttpRequest request;
  HttpResponse error;
  if (!read_request(fd, options_, &request, &error)) {
    send_response(fd, error);
    ::close(fd);
    return;
  }
  HttpResponse response;
  const auto route = routes_.find({request.method, request.path});
  if (route != routes_.end()) {
    try {
      response = route->second(request);
    } catch (const std::exception& e) {
      response = plain_status(500, std::string("handler error: ") + e.what());
    }
  } else {
    // Exact path under another method -> 405, unknown path -> 404.
    bool path_known = false;
    for (const auto& [key, handler] : routes_) {
      (void)handler;
      if (key.second == request.path) {
        path_known = true;
        break;
      }
    }
    response = path_known ? plain_status(405, "method not allowed")
                          : plain_status(404, "not found");
  }
  requests_served_.fetch_add(1, std::memory_order_relaxed);
  send_response(fd, response);
  ::close(fd);
}

void install_observability_routes(HttpServer& server, MetricRegistry* registry,
                                  Tracer* tracer,
                                  AdmissionController* admission,
                                  SloController* slo) {
  if (registry == nullptr) {
    throw std::invalid_argument(
        "install_observability_routes: registry is required");
  }
  server.handle("GET", "/metrics", [registry](const HttpRequest&) {
    HttpResponse response;
    // One consistent cut: the scrape is byte-identical to what an
    // in-process to_prometheus(snapshot()) at the same instant renders
    // (the E16 gate).
    response.body = to_prometheus(registry->snapshot());
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    return response;
  });
  server.handle("GET", "/vars", [registry](const HttpRequest&) {
    HttpResponse response;
    response.body = to_json(registry->snapshot());
    response.content_type = "application/json";
    return response;
  });
  server.handle("GET", "/healthz", [admission, slo](const HttpRequest&) {
    Health health = Health::kHealthy;
    if (admission != nullptr) health = admission->health();
    const SloHealth verdict =
        slo == nullptr ? SloHealth::kOk : slo->slo_health();
    HttpResponse response;
    // Proactive health: a degrading verdict (projected breach) already
    // drains traffic, so the flip happens BEFORE the SLO is broken.
    response.status =
        health == Health::kShedding || verdict != SloHealth::kOk ? 503 : 200;
    response.content_type = "application/json";
    std::ostringstream os;
    os << "{\"health\": \"" << health_name(health) << "\"";
    if (slo != nullptr) {
      os << ", \"slo\": {\"state\": \"" << slo_health_name(verdict)
         << "\", \"target_p99_ms\": "
         << static_cast<double>(slo->target_p99_ns()) * 1e-6
         << ", \"observed_p99_ms\": "
         << static_cast<double>(slo->observed_p99_ns()) * 1e-6
         << ", \"window_shed_fraction\": " << slo->shed_fraction() << "}";
    }
    os << "}\n";
    response.body = os.str();
    return response;
  });
  server.handle("GET", "/traces", [tracer](const HttpRequest&) {
    HttpResponse response;
    response.body = to_trace_event_json(
        tracer == nullptr ? std::vector<SpanRecord>{} : tracer->snapshot());
    response.content_type = "application/json";
    return response;
  });
}

HttpClientResponse http_request(const std::string& host, std::uint16_t port,
                                const std::string& method,
                                const std::string& target,
                                const std::string& body,
                                std::uint64_t timeout_ns) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("http_request: socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("http_request: bad host '" + host + "'");
  }
  arm_recv_timeout(fd, timeout_ns);
  arm_send_timeout(fd, timeout_ns);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    throw_errno("http_request: connect");
  }
  std::ostringstream os;
  os << method << ' ' << target << " HTTP/1.1\r\n"
     << "Host: " << host << "\r\n"
     << "Content-Length: " << body.size() << "\r\n"
     << "Connection: close\r\n\r\n"
     << body;
  const std::string request = os.str();
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent,
                             request.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      ::close(fd);
      throw_errno("http_request: send");
    }
    sent += static_cast<std::size_t>(n);
  }
  std::string raw;
  char chunk[4096];
  const Deadline deadline =
      Deadline::after(timeout_ns, SteadyClockSource::shared());
  while (true) {
    if (deadline.expired(SteadyClockSource::shared())) {
      ::close(fd);
      throw std::runtime_error("http_request: response timeout");
    }
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      throw_errno("http_request: recv");
    }
    if (n == 0) break;  // server closed: response complete
    raw.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);

  HttpClientResponse response;
  const std::size_t head_end = raw.find("\r\n\r\n");
  if (head_end == std::string::npos || raw.rfind("HTTP/1.", 0) != 0) {
    throw std::runtime_error("http_request: malformed response");
  }
  const std::size_t space = raw.find(' ');
  response.status = std::stoi(raw.substr(space + 1));
  response.body = raw.substr(head_end + 4);
  return response;
}

HttpClientResponse http_get(const std::string& host, std::uint16_t port,
                            const std::string& target,
                            std::uint64_t timeout_ns) {
  return http_request(host, port, "GET", target, "", timeout_ns);
}

}  // namespace confcall::support
