#include "support/cli.h"

#include <stdexcept>

namespace confcall::support {

Cli::Cli(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      throw std::invalid_argument("Cli: expected --flag, got '" + arg + "'");
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // `--name value` when the next token is not itself a flag; otherwise a
    // bare boolean `--name`.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "";
    }
  }
}

bool Cli::has(const std::string& name) const {
  const bool present = values_.count(name) != 0;
  if (present) used_[name] = true;
  return present;
}

std::string Cli::get_string(const std::string& name,
                            const std::string& fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  used_[name] = true;
  return it->second;
}

std::int64_t Cli::get_int(const std::string& name,
                          std::int64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  used_[name] = true;
  return std::stoll(it->second);
}

double Cli::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  used_[name] = true;
  return std::stod(it->second);
}

bool Cli::get_bool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  used_[name] = true;
  return it->second.empty() || it->second == "true" || it->second == "1";
}

std::vector<std::string> Cli::unused() const {
  std::vector<std::string> result;
  for (const auto& [name, value] : values_) {
    (void)value;
    if (used_.count(name) == 0) result.push_back(name);
  }
  return result;
}

BenchFlags parse_bench_flags(int argc, const char* const* argv) {
  const Cli cli(argc, argv);
  BenchFlags flags;
  flags.smoke = cli.get_bool("smoke", false);
  const std::int64_t threads = cli.get_int("threads", 0);
  if (threads < 0) {
    throw std::invalid_argument("--threads must be >= 0");
  }
  flags.threads = static_cast<std::size_t>(threads);
  flags.out = cli.get_string("out", "");
  for (const auto& name : cli.unused()) {
    throw std::invalid_argument("unknown flag --" + name);
  }
  return flags;
}

}  // namespace confcall::support
