// Minimal command-line flag parsing for the example binaries.
//
// Supports `--name=value` and `--name value` forms plus `--flag` booleans.
// Unknown flags are an error so typos do not silently fall back to defaults.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace confcall::support {

/// Parsed command line. Construct once from argc/argv, then pull typed
/// values with defaults.
class Cli {
 public:
  /// Parses argv. Throws std::invalid_argument on malformed input (a flag
  /// without the `--` prefix, or a dangling `--name` expecting a value).
  Cli(int argc, const char* const* argv);

  /// True when `--name` was present (with or without a value).
  [[nodiscard]] bool has(const std::string& name) const;

  [[nodiscard]] std::string get_string(const std::string& name,
                                       const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  /// Names that were parsed but never read; lets examples reject typos.
  [[nodiscard]] std::vector<std::string> unused() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> used_;
};

/// The flag set shared by the bench binaries, parsed in one place so each
/// bench stops hand-rolling its own argv scan:
///   --smoke       CI-sized run (same sweeps, shorter horizon)
///   --threads N   worker threads for parallel sections (0 = hardware)
///   --out FILE    machine-readable output path (benches that emit one)
struct BenchFlags {
  bool smoke = false;
  std::size_t threads = 0;
  std::string out;
};

/// Parses the shared bench flags. Throws std::invalid_argument on a
/// malformed command line, an unknown flag, or a negative thread count.
[[nodiscard]] BenchFlags parse_bench_flags(int argc, const char* const* argv);

}  // namespace confcall::support
