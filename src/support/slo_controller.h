// Closed-loop SLO controller: feedback from observed latency to the
// overload actuators.
//
// The paper fixes a round budget D and optimizes paging cost under it;
// a serving deployment inverts that contract — a latency SLO must hold
// while burst levels and outage rates drift. Static AdmissionOptions
// thresholds are one operating point tuned against one workload (E14);
// residence-time variance alone can swing sequential-paging delay enough
// to invalidate it (Koukoutsidis et al.), and the Hajek–Mitzel–Yang
// iterative-adaptation viewpoint motivates driving the knobs from
// observed cost instead. This controller closes the loop:
//
//   sensor     the MetricRegistry's admitted-call rounds histogram,
//              read as WINDOWED deltas (RegistrySnapshot::delta) so each
//              control period sees interval percentiles, not lifetime
//              aggregates that average breaches away;
//   law        AIMD on two admission actuators — while the interval p99
//              is at or under the SLO, the token rate rises additively
//              and the degrade threshold relaxes toward full quality;
//              on a breach the token rate is cut multiplicatively and
//              the degrade threshold raised one step (degrade earlier:
//              the cheap one-round blanket tier replaces d-round plans
//              before latency, not after);
//   breakers   each guarded tier's cooldown tracks the observed
//              recovery-time EWMA — a dependency that recovers on the
//              first probe walks its cooldown down, one that keeps
//              failing probes backs it off;
//   health     a pre-breach "degrading" signal: when the linear p99
//              trend projects a breach within `breach_horizon_periods`
//              control periods, slo_health() flips BEFORE the SLO is
//              broken, so /healthz can shed a load balancer's traffic
//              proactively.
//
// Stability / anti-windup: actuators only move on intervals with at
// least `min_interval_calls` admitted calls (an idle window neither
// ramps the token rate nor relaxes degradation), every actuator is
// clamped to a configured range, and the degrade threshold stays inside
// the hysteresis chain (recover_above <= degraded_below < healthy_above)
// so the health machine's invariants survive the controller.
//
// All time flows through the injectable ClockSource: under a
// ManualClock every control step lands on a fixed period grid and the
// whole loop is bit-reproducible (the E17 grid and the SLO soak row
// depend on this). Internally locked; maybe_step() and the accessors
// may race with scrape handlers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "support/metrics.h"
#include "support/overload.h"
#include "support/state_io.h"

namespace confcall::support {

/// The controller's verdict on the SLO, exposed to /healthz.
enum class SloHealth {
  kOk,         ///< interval p99 within SLO, no projected breach
  kDegrading,  ///< still within SLO, but the trend projects a breach
  kBreached,   ///< the interval p99 exceeded the SLO
};

[[nodiscard]] const char* slo_health_name(SloHealth health) noexcept;

/// SloController tuning. The defaults suit the simulator's virtual
/// timescale (1 ms rounds, 10 ms steps); confcall_serve scales them to
/// wall time via --slo-p99-ms / --control-period-ms.
struct SloOptions {
  /// Master switch for config embedding (OverloadConfig::slo); the
  /// controller itself is always "on" once constructed.
  bool enabled = false;
  /// The SLO: admitted-call setup p99 (rounds * round duration) must
  /// stay at or under this.
  std::uint64_t target_p99_ns = 3'000'000;  // 3 ms
  /// Fixed control period; steps land on the period grid regardless of
  /// how irregularly maybe_step() is polled.
  std::uint64_t control_period_ns = 200'000'000;  // 200 ms
  /// AIMD: tokens/sec added per in-SLO period, and the factor the rate
  /// is multiplied by on a breached period.
  double additive_increase = 8.0;
  double multiplicative_decrease = 0.5;
  /// Token-rate actuator clamp (anti-windup: the additive ramp cannot
  /// run away during a long quiet spell).
  double min_refill_per_sec = 1.0;
  double max_refill_per_sec = 1'000'000.0;
  /// Degrade-threshold actuator: moved by this much per period, clamped
  /// to the admission options' hysteresis chain at attach time.
  double degrade_step = 0.08;
  /// Intervals with fewer admitted calls than this hold every actuator
  /// (too thin to estimate a p99 from).
  std::size_t min_interval_calls = 8;
  /// Pre-breach projection horizon k: degrading when
  /// p99 + slope * k > target while p99 itself is still within SLO.
  std::size_t breach_horizon_periods = 3;
  /// Breaker-cooldown actuator: EWMA weight of each newly observed
  /// recovery time, and the cooldown = multiplier * EWMA clamp range.
  /// A multiplier < 1 probes downward when recoveries complete on the
  /// first probe (observed recovery can never undershoot the cooldown
  /// itself) and still backs off when probes keep failing.
  double recovery_ewma_alpha = 0.3;
  double cooldown_recovery_multiplier = 0.5;
  std::uint64_t min_cooldown_ns = 1'000'000;          // 1 ms
  std::uint64_t max_cooldown_ns = 60'000'000'000;     // 60 s

  /// Throws std::invalid_argument with a specific message per violation.
  void validate() const;
};

/// The feedback controller. One instance drives one AdmissionController
/// (and optionally the breakers of a planner chain) from one registry.
class SloController {
 public:
  /// `registry`, `admission` and `clock` must outlive the controller.
  /// `round_duration_ns` converts the rounds histogram into latency
  /// (> 0); `rounds_histogram` names the registry FAMILY the sensor
  /// reads (admitted-call rounds, unit buckets). The sensor is
  /// label-summed (RegistrySnapshot::sum_by): every label set of the
  /// family folds into one fleet-wide interval histogram, so the same
  /// controller senses a single unlabelled service or a ServiceFleet's
  /// per-shard {shard="s"} series — and because the label-erased sum is
  /// invariant under resharding, the control trajectory is identical at
  /// any shard count. Throws std::invalid_argument on bad options or a
  /// zero round duration.
  SloController(SloOptions options, MetricRegistry& registry,
                AdmissionController& admission, const ClockSource& clock,
                std::uint64_t round_duration_ns,
                std::string rounds_histogram = "confcall_locate_rounds");

  /// Adds a breaker to the cooldown actuator set (non-owning; must
  /// outlive the controller). Typically every non-final tier breaker of
  /// a ResilientPlanner.
  void add_breaker(CircuitBreaker* breaker);

  /// Runs control steps for every period boundary passed since the last
  /// call (at most one evaluation — intermediate empty periods collapse
  /// into it). Returns true when a step ran. Call it from the serve /
  /// simulation loop; cheap when no boundary passed (one clock read
  /// under the lock).
  bool maybe_step();

  /// Forces one control step right now (tests; maybe_step is the
  /// production path).
  void step();

  /// Registers the confcall_slo_* family on `registry` and mirrors the
  /// target, every sensor reading and every actuator position into it
  /// (see docs/OBSERVABILITY.md). The registry must outlive the
  /// controller.
  void bind_metrics(MetricRegistry& registry);

  [[nodiscard]] SloHealth slo_health() const;
  /// Last measured interval p99 in ns (0 until the first thick-enough
  /// interval).
  [[nodiscard]] std::uint64_t observed_p99_ns() const;
  /// Shed fraction of the last control interval's arrivals (0 when the
  /// interval saw none).
  [[nodiscard]] double shed_fraction() const;
  [[nodiscard]] std::uint64_t target_p99_ns() const noexcept {
    return options_.target_p99_ns;
  }

  /// Actuator positions.
  [[nodiscard]] double refill_per_sec() const;
  [[nodiscard]] double degrade_threshold() const;
  /// 0 until the first recovery observation moves the cooldown.
  [[nodiscard]] std::uint64_t breaker_cooldown_ns() const;

  /// Telemetry: control steps run, breached periods, and pre-breach
  /// (degrading) periods signalled.
  [[nodiscard]] std::uint64_t control_steps() const;
  [[nodiscard]] std::uint64_t breaches() const;
  [[nodiscard]] std::uint64_t pre_breach_signals() const;

  [[nodiscard]] const SloOptions& options() const noexcept {
    return options_;
  }

  /// Section name + version for checkpoint bundles (see state_io.h).
  static constexpr const char* kStateSection = "slo_controller";
  static constexpr std::uint32_t kStateVersion = 1;

  /// Serializes the actuator + sensor state (token refill rate, degrade
  /// threshold, recovery-time EWMA, breaker cooldown, p99 history) as a
  /// kStateSection payload. Pure function of the controller state —
  /// identical state yields identical bytes.
  [[nodiscard]] std::string save_state() const;

  /// Restores a kStateSection payload written by save_state: every
  /// actuator is clamped back into the configured ranges and re-applied
  /// to the attached admission controller and breakers, so the very next
  /// control step runs from the warm operating point. Returns false —
  /// leaving the controller in its cold-start state — on a version this
  /// build does not speak or a malformed payload; NEVER throws on bad
  /// input.
  [[nodiscard]] bool restore_state(std::string_view payload,
                                   std::uint32_t version);

 private:
  void step_locked();

  SloOptions options_;
  MetricRegistry* registry_;
  AdmissionController* admission_;
  const ClockSource* clock_;
  std::uint64_t round_duration_ns_;
  std::string rounds_histogram_;

  mutable std::mutex mutex_;
  std::vector<CircuitBreaker*> breakers_;
  std::vector<std::uint64_t> recoveries_consumed_;
  std::uint64_t next_control_ns_;
  RegistrySnapshot prev_;

  // Sensor state.
  std::uint64_t observed_p99_ns_ = 0;   ///< last measured interval
  std::uint64_t previous_p99_ns_ = 0;   ///< the measurement before that
  bool have_measurement_ = false;
  bool have_previous_ = false;
  double shed_fraction_ = 0.0;
  SloHealth slo_health_ = SloHealth::kOk;

  // Actuator state.
  double refill_per_sec_;
  double degrade_threshold_;
  double degrade_lo_;  ///< recover_above of the attached admission
  double degrade_hi_;  ///< just under healthy_above
  double recovery_ewma_ns_ = 0.0;
  std::uint64_t cooldown_ns_ = 0;

  // Telemetry.
  std::uint64_t control_steps_ = 0;
  std::uint64_t breaches_ = 0;
  std::uint64_t pre_breach_signals_ = 0;

  // Registry mirrors (unbound until bind_metrics).
  Gauge target_metric_;
  Gauge observed_metric_;
  Gauge shed_fraction_metric_;
  Gauge health_metric_;
  Gauge refill_metric_;
  Gauge degrade_metric_;
  Gauge cooldown_metric_;
  Counter steps_metric_;
  Counter breaches_metric_;
  Counter pre_breach_metric_;
};

}  // namespace confcall::support
