#include "support/slo_controller.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <stdexcept>
#include <utility>

namespace confcall::support {

const char* slo_health_name(SloHealth health) noexcept {
  switch (health) {
    case SloHealth::kOk:
      return "ok";
    case SloHealth::kDegrading:
      return "degrading";
    case SloHealth::kBreached:
      return "breached";
  }
  return "?";
}

void SloOptions::validate() const {
  if (target_p99_ns == 0) {
    throw std::invalid_argument("SloController: target_p99_ns must be >= 1");
  }
  if (control_period_ns == 0) {
    throw std::invalid_argument(
        "SloController: control_period_ns must be >= 1");
  }
  if (!(additive_increase > 0.0)) {
    throw std::invalid_argument(
        "SloController: additive_increase must be > 0");
  }
  if (!(multiplicative_decrease > 0.0 && multiplicative_decrease < 1.0)) {
    throw std::invalid_argument(
        "SloController: multiplicative_decrease must be in (0, 1)");
  }
  if (!(min_refill_per_sec > 0.0 &&
        min_refill_per_sec <= max_refill_per_sec)) {
    throw std::invalid_argument(
        "SloController: need 0 < min_refill_per_sec <= max_refill_per_sec");
  }
  if (!(degrade_step > 0.0 && degrade_step < 1.0)) {
    throw std::invalid_argument(
        "SloController: degrade_step must be in (0, 1)");
  }
  if (min_interval_calls == 0) {
    throw std::invalid_argument(
        "SloController: min_interval_calls must be >= 1");
  }
  if (breach_horizon_periods == 0) {
    throw std::invalid_argument(
        "SloController: breach_horizon_periods must be >= 1");
  }
  if (!(recovery_ewma_alpha > 0.0 && recovery_ewma_alpha <= 1.0)) {
    throw std::invalid_argument(
        "SloController: recovery_ewma_alpha must be in (0, 1]");
  }
  if (!(cooldown_recovery_multiplier > 0.0)) {
    throw std::invalid_argument(
        "SloController: cooldown_recovery_multiplier must be > 0");
  }
  if (min_cooldown_ns == 0 || min_cooldown_ns > max_cooldown_ns) {
    throw std::invalid_argument(
        "SloController: need 1 <= min_cooldown_ns <= max_cooldown_ns");
  }
}

SloController::SloController(SloOptions options, MetricRegistry& registry,
                             AdmissionController& admission,
                             const ClockSource& clock,
                             std::uint64_t round_duration_ns,
                             std::string rounds_histogram)
    : options_(options),
      registry_(&registry),
      admission_(&admission),
      clock_(&clock),
      round_duration_ns_(round_duration_ns),
      rounds_histogram_(std::move(rounds_histogram)) {
  options_.validate();
  if (round_duration_ns_ == 0) {
    throw std::invalid_argument(
        "SloController: round_duration_ns must be >= 1");
  }
  const AdmissionOptions admitted = admission_->options();
  refill_per_sec_ = std::clamp(admitted.refill_per_sec,
                               options_.min_refill_per_sec,
                               options_.max_refill_per_sec);
  degrade_threshold_ = admitted.degraded_below;
  degrade_lo_ = admitted.recover_above;
  // Strictly under healthy_above so the hysteresis chain's validation
  // keeps holding at the top of the actuator range.
  degrade_hi_ = admitted.healthy_above - 1e-9;
  next_control_ns_ = clock_->now_ns() + options_.control_period_ns;
  prev_ = registry_->snapshot();
}

void SloController::add_breaker(CircuitBreaker* breaker) {
  if (breaker == nullptr) {
    throw std::invalid_argument("SloController: breaker must be non-null");
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  breakers_.push_back(breaker);
  recoveries_consumed_.push_back(breaker->recoveries());
}

bool SloController::maybe_step() {
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t now = clock_->now_ns();
  if (now < next_control_ns_) return false;
  // Catch up onto the fixed period grid: however late the poll, the
  // next boundary stays a multiple of the period from construction, so
  // ManualClock runs land identical steps regardless of poll cadence.
  while (next_control_ns_ <= now) {
    next_control_ns_ += options_.control_period_ns;
  }
  step_locked();
  return true;
}

void SloController::step() {
  const std::lock_guard<std::mutex> lock(mutex_);
  step_locked();
}

void SloController::step_locked() {
  ++control_steps_;
  steps_metric_.inc();

  // Sensor: the interval view since the previous control step.
  RegistrySnapshot current = registry_->snapshot();
  const RegistrySnapshot interval = current.delta(prev_);
  prev_ = std::move(current);

  // Label-summed sensing: sum_by folds every series of the family into
  // one label-erased histogram, so the same controller reads the single
  // unlabelled series (one service) or the fleet-wide {shard="s"} union
  // identically. Because the label-erased sum is invariant under
  // resharding, the control trajectory — and with it every admission
  // decision — is bit-identical at shards 1/2/8 (the E21 gate).
  const std::optional<MetricSnapshot> rounds =
      interval.sum_by(rounds_histogram_);
  const std::uint64_t interval_calls = rounds ? rounds->histogram.count : 0;

  // Shed fraction of the interval's arrivals (admitted + degraded +
  // shed), for /healthz and the windowed gauge.
  const auto interval_counter = [&interval](const char* name) {
    const std::optional<MetricSnapshot> metric = interval.sum_by(name);
    return metric ? metric->counter_value : std::uint64_t{0};
  };
  const std::uint64_t shed =
      interval_counter("confcall_admission_shed_total");
  const std::uint64_t arrivals =
      shed + interval_counter("confcall_admission_admitted_total") +
      interval_counter("confcall_admission_degraded_total");
  shed_fraction_ = arrivals == 0 ? 0.0
                                 : static_cast<double>(shed) /
                                       static_cast<double>(arrivals);
  shed_fraction_metric_.set(shed_fraction_);

  // Breaker-cooldown actuator: fold newly completed recoveries into the
  // EWMA, then re-derive every guarded tier's cooldown from it.
  bool ewma_moved = false;
  for (std::size_t i = 0; i < breakers_.size(); ++i) {
    const std::uint64_t recovered = breakers_[i]->recoveries();
    if (recovered > recoveries_consumed_[i]) {
      recoveries_consumed_[i] = recovered;
      const auto sample =
          static_cast<double>(breakers_[i]->last_recovery_ns());
      recovery_ewma_ns_ =
          recovery_ewma_ns_ == 0.0
              ? sample
              : options_.recovery_ewma_alpha * sample +
                    (1.0 - options_.recovery_ewma_alpha) * recovery_ewma_ns_;
      ewma_moved = true;
    }
  }
  if (ewma_moved) {
    const double derived =
        options_.cooldown_recovery_multiplier * recovery_ewma_ns_;
    cooldown_ns_ = std::clamp(
        static_cast<std::uint64_t>(derived), options_.min_cooldown_ns,
        options_.max_cooldown_ns);
    for (CircuitBreaker* breaker : breakers_) {
      breaker->set_cooldown_ns(cooldown_ns_);
    }
    cooldown_metric_.set(static_cast<double>(cooldown_ns_));
  }

  // Thin interval: hold every latency-driven actuator and the health
  // verdict (anti-windup — an idle window must not ramp the token rate
  // or erase a standing degrading signal).
  if (interval_calls < options_.min_interval_calls) return;

  const double p99_rounds = rounds->histogram.quantile(0.99);
  const auto p99_ns = static_cast<std::uint64_t>(
      p99_rounds * static_cast<double>(round_duration_ns_));
  if (have_measurement_) {
    previous_p99_ns_ = observed_p99_ns_;
    have_previous_ = true;
  }
  observed_p99_ns_ = p99_ns;
  have_measurement_ = true;
  observed_metric_.set(static_cast<double>(p99_ns));

  // Health: breached on an over-target interval; degrading when the
  // linear trend projects crossing the target within the horizon.
  const bool breached = p99_ns > options_.target_p99_ns;
  bool degrading = false;
  if (!breached && have_previous_ && p99_ns > previous_p99_ns_) {
    const std::uint64_t slope = p99_ns - previous_p99_ns_;
    const std::uint64_t projected =
        p99_ns + slope * static_cast<std::uint64_t>(
                             options_.breach_horizon_periods);
    degrading = projected > options_.target_p99_ns;
  }
  slo_health_ = breached    ? SloHealth::kBreached
                : degrading ? SloHealth::kDegrading
                            : SloHealth::kOk;
  health_metric_.set(static_cast<double>(slo_health_));
  if (breached) {
    ++breaches_;
    breaches_metric_.inc();
  } else if (degrading) {
    ++pre_breach_signals_;
    pre_breach_metric_.inc();
  }

  // AIMD actuators. On a breach the token rate is cut multiplicatively
  // and degradation starts earlier; while in-SLO both recover gently.
  // A degrading verdict already leans on the brake halfway (one degrade
  // step, rate held) so the pre-breach signal acts, not just reports.
  if (breached) {
    refill_per_sec_ = std::max(options_.min_refill_per_sec,
                               refill_per_sec_ *
                                   options_.multiplicative_decrease);
    degrade_threshold_ =
        std::min(degrade_hi_, degrade_threshold_ + options_.degrade_step);
  } else if (degrading) {
    degrade_threshold_ =
        std::min(degrade_hi_, degrade_threshold_ + options_.degrade_step);
  } else {
    refill_per_sec_ = std::min(options_.max_refill_per_sec,
                               refill_per_sec_ + options_.additive_increase);
    degrade_threshold_ =
        std::max(degrade_lo_, degrade_threshold_ - options_.degrade_step);
  }
  admission_->set_refill_per_sec(refill_per_sec_);
  admission_->set_degraded_below(degrade_threshold_);
  refill_metric_.set(refill_per_sec_);
  degrade_metric_.set(degrade_threshold_);
}

std::string SloController::save_state() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  StateWriter writer;
  writer.put_f64(refill_per_sec_);
  writer.put_f64(degrade_threshold_);
  writer.put_f64(recovery_ewma_ns_);
  writer.put_u64(cooldown_ns_);
  writer.put_u64(observed_p99_ns_);
  writer.put_u64(previous_p99_ns_);
  writer.put_u8(have_measurement_ ? 1 : 0);
  writer.put_u8(have_previous_ ? 1 : 0);
  return std::move(writer).take();
}

bool SloController::restore_state(std::string_view payload,
                                  std::uint32_t version) {
  if (version != kStateVersion) return false;
  try {
    StateReader reader(payload);
    const double refill = reader.get_f64();
    const double degrade = reader.get_f64();
    const double ewma = reader.get_f64();
    const std::uint64_t cooldown = reader.get_u64();
    const std::uint64_t observed = reader.get_u64();
    const std::uint64_t previous = reader.get_u64();
    const bool have_measurement = reader.get_u8() != 0;
    const bool have_previous = reader.get_u8() != 0;
    if (!reader.at_end()) return false;
    // Non-finite actuators would poison every subsequent AIMD step; a
    // checkpoint carrying them is corrupt in a way the checksum cannot
    // see (it was written that way), so reject here.
    if (!std::isfinite(refill) || !std::isfinite(degrade) ||
        !std::isfinite(ewma) || ewma < 0.0) {
      return false;
    }

    const std::lock_guard<std::mutex> lock(mutex_);
    // Clamp back into THIS build's configured ranges: a checkpoint from
    // a run with wider limits must not install an out-of-range actuator.
    refill_per_sec_ = std::clamp(refill, options_.min_refill_per_sec,
                                 options_.max_refill_per_sec);
    degrade_threshold_ = std::clamp(degrade, degrade_lo_, degrade_hi_);
    recovery_ewma_ns_ = ewma;
    cooldown_ns_ = cooldown == 0
                       ? 0
                       : std::clamp(cooldown, options_.min_cooldown_ns,
                                    options_.max_cooldown_ns);
    observed_p99_ns_ = observed;
    previous_p99_ns_ = previous;
    have_measurement_ = have_measurement;
    have_previous_ = have_previous;

    // Re-apply the warm operating point to the actuators themselves —
    // restoring only the controller's bookkeeping would leave the
    // admission controller cold until the first post-restart step.
    admission_->set_refill_per_sec(refill_per_sec_);
    admission_->set_degraded_below(degrade_threshold_);
    if (cooldown_ns_ > 0) {
      for (CircuitBreaker* breaker : breakers_) {
        breaker->set_cooldown_ns(cooldown_ns_);
      }
    }
    refill_metric_.set(refill_per_sec_);
    degrade_metric_.set(degrade_threshold_);
    observed_metric_.set(static_cast<double>(observed_p99_ns_));
    if (cooldown_ns_ > 0) {
      cooldown_metric_.set(static_cast<double>(cooldown_ns_));
    }
    return true;
  } catch (const StateFormatError&) {
    return false;
  }
}

void SloController::bind_metrics(MetricRegistry& registry) {
  const std::lock_guard<std::mutex> lock(mutex_);
  target_metric_ = registry.gauge("confcall_slo_target_p99_ns",
                                  "Configured admitted-latency p99 SLO");
  observed_metric_ = registry.gauge(
      "confcall_slo_observed_p99_ns",
      "Admitted-call p99 of the last measured control interval");
  shed_fraction_metric_ = registry.gauge(
      "confcall_slo_window_shed_fraction",
      "Shed fraction of the last control interval's arrivals");
  health_metric_ = registry.gauge(
      "confcall_slo_health",
      "Controller verdict: 0 = ok, 1 = degrading (projected breach), "
      "2 = breached");
  refill_metric_ = registry.gauge(
      "confcall_slo_refill_per_sec",
      "Token-rate actuator position on the admission controller");
  degrade_metric_ = registry.gauge(
      "confcall_slo_degrade_threshold",
      "Degrade-threshold actuator position on the admission controller");
  cooldown_metric_ = registry.gauge(
      "confcall_slo_breaker_cooldown_ns",
      "Breaker-cooldown actuator derived from the recovery-time EWMA "
      "(0 until the first observed recovery)");
  steps_metric_ = registry.counter("confcall_slo_control_steps_total",
                                   "Control periods evaluated");
  breaches_metric_ = registry.counter(
      "confcall_slo_breaches_total",
      "Control intervals whose admitted p99 exceeded the SLO");
  pre_breach_metric_ = registry.counter(
      "confcall_slo_pre_breach_signals_total",
      "Control intervals flagged degrading before any breach");
  target_metric_.set(static_cast<double>(options_.target_p99_ns));
  refill_metric_.set(refill_per_sec_);
  degrade_metric_.set(degrade_threshold_);
}

SloHealth SloController::slo_health() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return slo_health_;
}

std::uint64_t SloController::observed_p99_ns() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return observed_p99_ns_;
}

double SloController::shed_fraction() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return shed_fraction_;
}

double SloController::refill_per_sec() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return refill_per_sec_;
}

double SloController::degrade_threshold() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return degrade_threshold_;
}

std::uint64_t SloController::breaker_cooldown_ns() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return cooldown_ns_;
}

std::uint64_t SloController::control_steps() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return control_steps_;
}

std::uint64_t SloController::breaches() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return breaches_;
}

std::uint64_t SloController::pre_breach_signals() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return pre_breach_signals_;
}

}  // namespace confcall::support
