// Fleet substrate: the process-wide primitives under multi-shard serving
// (cellular/service_fleet.h builds the domain layer on top).
//
// Three pieces, each independently testable:
//
//   * SignatureTable<V> — a process-wide content-signature -> value table
//     with insert-once semantics behind a sharded mutex. The serving use
//     is signature -> planned Strategy: identically-distributed location
//     areas sign identically (LocationService::plan_signature hashes the
//     planning INPUTS, never the area index), so whichever shard plans a
//     signature first publishes the strategy and every other shard's
//     first miss becomes a copy instead of a Fig. 1 DP run. Lookups copy
//     the value out under the shard lock — no reference ever escapes, so
//     readers can't dangle and TSan sees plain lock-protected accesses.
//     Insert-once keeps the table deterministic under racing inserts:
//     two shards planning the same signature computed the same strategy
//     from the same inputs (the planner is deterministic), so whichever
//     insert lands first, the table holds the value both computed.
//   * ShardQueueSet — N cache-line-aligned bounded task queues with
//     FIFO local pop and steal-from-the-back when a victim's backlog
//     exceeds a configurable limit. This is the NOVA core-map/steal-limit
//     idiom (see DESIGN.md §14): owners drain their own queue in order;
//     a thief only intrudes on a queue that is measurably behind, and
//     takes from the back — the work its owner would reach last.
//   * ShardCoreMap / pin_current_thread_to_core — round-robin shard ->
//     core placement. Pinning is Linux-only and best-effort: placement
//     is a performance hint, never a correctness requirement.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#if defined(__linux__)
#include <sched.h>
#endif

namespace confcall::support {

/// Process-wide signature -> value table, read-mostly, sharded-mutex
/// guarded. See the header comment for the serving contract. V must be
/// copyable; lookups copy the value out so no caller ever holds a
/// reference into the table.
template <typename V>
class SignatureTable {
 public:
  /// `capacity` bounds the total entry count across all lock shards
  /// (0 = unbounded). A full table rejects new inserts — callers keep
  /// their locally planned value, they just stop publishing — so a
  /// pathological workload with unbounded distinct signatures degrades
  /// to per-shard planning instead of unbounded memory growth.
  explicit SignatureTable(std::size_t capacity = 4096)
      : capacity_(capacity) {}

  SignatureTable(const SignatureTable&) = delete;
  SignatureTable& operator=(const SignatureTable&) = delete;

  /// A copy of the value for `signature`, or std::nullopt when absent
  /// (V need not be default-constructible). Counts a hit or a miss
  /// either way.
  [[nodiscard]] std::optional<V> lookup(std::uint64_t signature) const {
    const Shard& shard = shards_[shard_of(signature)];
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.entries.find(signature);
    if (it == shard.entries.end()) {
      ++shard.misses;
      return std::nullopt;
    }
    ++shard.hits;
    return it->second;
  }

  /// Publishes `value` under `signature` unless the signature is already
  /// present (first writer wins — see the determinism note above) or the
  /// table is at capacity. Returns true when the insert landed.
  bool insert(std::uint64_t signature, const V& value) {
    Shard& shard = shards_[shard_of(signature)];
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (shard.entries.find(signature) != shard.entries.end()) return false;
    if (capacity_ != 0 && size_.load(std::memory_order_relaxed) >= capacity_) {
      ++shard.rejected;
      return false;
    }
    shard.entries.emplace(signature, value);
    size_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t rejected = 0;  ///< inserts refused at capacity
    std::size_t entries = 0;
  };

  /// One consistent-enough cut of the counters (each lock shard is read
  /// under its own mutex; cross-shard skew is bounded by in-flight ops).
  [[nodiscard]] Stats stats() const {
    Stats total;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mutex);
      total.hits += shard.hits;
      total.misses += shard.misses;
      total.rejected += shard.rejected;
      total.entries += shard.entries.size();
    }
    return total;
  }

  [[nodiscard]] std::size_t size() const {
    return size_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr std::size_t kNumShards = 16;

  static std::size_t shard_of(std::uint64_t signature) noexcept {
    // The signature is already well-mixed (splitmix64 finalizer); the
    // low bits pick the lock shard.
    return static_cast<std::size_t>(signature) & (kNumShards - 1);
  }

  struct alignas(64) Shard {
    mutable std::mutex mutex;
    std::map<std::uint64_t, V> entries;
    mutable std::uint64_t hits = 0;
    mutable std::uint64_t misses = 0;
    std::uint64_t rejected = 0;
  };

  const std::size_t capacity_;
  std::atomic<std::size_t> size_{0};
  Shard shards_[kNumShards];
};

/// N bounded FIFO task queues, one per shard, each on its own cache
/// line. Tasks are opaque std::size_t ids. Owners pop from the front;
/// thieves take from the BACK of a victim queue, and only when the
/// victim's depth exceeds the steal limit — a shard that is keeping up
/// is never raided (the NOVA stealing-limit discipline).
class ShardQueueSet {
 public:
  /// `capacity` bounds each queue's depth (push returns false on a full
  /// queue; the caller overflow-routes). `steal_limit` is the depth a
  /// queue must EXCEED before steal() may take from it.
  ShardQueueSet(std::size_t num_shards, std::size_t capacity,
                std::size_t steal_limit)
      : shards_(num_shards), capacity_(capacity), steal_limit_(steal_limit) {}

  [[nodiscard]] std::size_t num_shards() const noexcept {
    return shards_.size();
  }
  [[nodiscard]] std::size_t steal_limit() const noexcept {
    return steal_limit_;
  }

  /// Enqueues `task` on `shard`'s queue; false when the queue is full.
  bool push(std::size_t shard, std::size_t task) {
    Shard& s = shards_[shard];
    std::lock_guard<std::mutex> lock(s.mutex);
    if (s.queue.size() >= capacity_) return false;
    s.queue.push_back(task);
    if (s.queue.size() > s.high_water) s.high_water = s.queue.size();
    return true;
  }

  /// FIFO pop of `shard`'s own queue.
  [[nodiscard]] std::optional<std::size_t> pop_local(std::size_t shard) {
    Shard& s = shards_[shard];
    std::lock_guard<std::mutex> lock(s.mutex);
    if (s.queue.empty()) return std::nullopt;
    const std::size_t task = s.queue.front();
    s.queue.pop_front();
    return task;
  }

  struct Steal {
    std::size_t task;
    std::size_t victim;  ///< shard the task was taken from
  };

  /// Scans the other shards from `thief + 1` round-robin and takes one
  /// task from the BACK of the first queue whose depth exceeds the steal
  /// limit. std::nullopt when nobody is far enough behind.
  [[nodiscard]] std::optional<Steal> steal(std::size_t thief) {
    const std::size_t n = shards_.size();
    for (std::size_t hop = 1; hop < n; ++hop) {
      const std::size_t victim = (thief + hop) % n;
      Shard& s = shards_[victim];
      std::lock_guard<std::mutex> lock(s.mutex);
      if (s.queue.size() <= steal_limit_) continue;
      const std::size_t task = s.queue.back();
      s.queue.pop_back();
      return Steal{task, victim};
    }
    return std::nullopt;
  }

  [[nodiscard]] std::size_t depth(std::size_t shard) const {
    const Shard& s = shards_[shard];
    std::lock_guard<std::mutex> lock(s.mutex);
    return s.queue.size();
  }

  /// Deepest this shard's queue has ever been (dispatch-time backlog —
  /// what the confcall_fleet_queue_depth gauge exports).
  [[nodiscard]] std::size_t high_water(std::size_t shard) const {
    const Shard& s = shards_[shard];
    std::lock_guard<std::mutex> lock(s.mutex);
    return s.high_water;
  }

 private:
  struct alignas(64) Shard {
    mutable std::mutex mutex;
    std::deque<std::size_t> queue;
    std::size_t high_water = 0;
  };

  std::vector<Shard> shards_;
  const std::size_t capacity_;
  const std::size_t steal_limit_;
};

/// Round-robin shard -> core placement over the machine's hardware
/// threads: shard s runs best on core s % num_cores. Purely advisory.
struct ShardCoreMap {
  std::vector<unsigned> core_of_shard;

  [[nodiscard]] static ShardCoreMap round_robin(std::size_t num_shards) {
    const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
    ShardCoreMap map;
    map.core_of_shard.reserve(num_shards);
    for (std::size_t s = 0; s < num_shards; ++s) {
      map.core_of_shard.push_back(static_cast<unsigned>(s) % cores);
    }
    return map;
  }
};

/// Best-effort CPU pinning of the calling thread (Linux sched_setaffinity;
/// a no-op elsewhere). Returns true when the affinity call succeeded.
/// Placement is a cache-locality hint: every caller must behave
/// identically whether or not the pin lands.
inline bool pin_current_thread_to_core(unsigned core) {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(core, &set);
  return ::sched_setaffinity(0, sizeof(set), &set) == 0;
#else
  (void)core;
  return false;
#endif
}

}  // namespace confcall::support
