#include "support/arena.h"

namespace confcall::support {

ScratchArena& ScratchArena::local() {
  thread_local ScratchArena arena;
  return arena;
}

std::size_t ScratchArena::bytes_in_use() const noexcept {
  std::size_t used = offset_;
  for (std::size_t i = 0; i < chunk_ && i < chunks_.size(); ++i) {
    used += chunks_[i].size;
  }
  return used;
}

std::size_t ScratchArena::bytes_reserved() const noexcept {
  std::size_t total = 0;
  for (const Chunk& chunk : chunks_) total += chunk.size;
  return total;
}

void* ScratchArena::allocate_bytes(std::size_t bytes, std::size_t align) {
  for (;;) {
    if (chunk_ < chunks_.size()) {
      const Chunk& chunk = chunks_[chunk_];
      const auto base = reinterpret_cast<std::uintptr_t>(chunk.data.get());
      const std::uintptr_t aligned =
          (base + offset_ + align - 1) & ~static_cast<std::uintptr_t>(align - 1);
      if (aligned + bytes <= base + chunk.size) {
        offset_ = static_cast<std::size_t>(aligned - base) + bytes;
        return reinterpret_cast<void*>(aligned);
      }
      // The current chunk's tail is too small: skip to the next chunk.
      // The skipped tail stays owned and is reclaimed on scope exit.
      ++chunk_;
      offset_ = 0;
      continue;
    }
    const std::size_t grown =
        chunks_.empty() ? initial_bytes_ : chunks_.back().size * 2;
    const std::size_t need = bytes + align;
    chunks_.push_back(Chunk{std::make_unique<std::byte[]>(
                                grown > need ? grown : need),
                            grown > need ? grown : need});
  }
}

}  // namespace confcall::support
