// Fixed-width text-table printer.
//
// Every benchmark and example prints paper-style rows through this class so
// the experiment output in EXPERIMENTS.md is uniform and diffable.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace confcall::support {

/// Column alignment within a table cell.
enum class Align { kLeft, kRight };

/// Accumulates rows of strings and prints them with per-column widths,
/// a header underline, and optional separator rows.
class TextTable {
 public:
  /// Creates a table with the given column headers (all right-aligned by
  /// default, which suits numeric experiment tables).
  explicit TextTable(std::vector<std::string> headers);

  /// Overrides the alignment of one column (0-based).
  void set_align(std::size_t column, Align align);

  /// Appends a data row. Throws std::invalid_argument when the cell count
  /// does not match the header count.
  void add_row(std::vector<std::string> cells);

  /// Appends a horizontal separator at the current position.
  void add_separator();

  /// Renders the whole table.
  [[nodiscard]] std::string to_string() const;

  /// Renders as RFC-4180-style CSV (header row first; separators are
  /// dropped; cells containing commas/quotes/newlines are quoted). Useful
  /// for piping experiment series into plotting tools.
  [[nodiscard]] std::string to_csv() const;

  /// Convenience: renders straight to a stream.
  friend std::ostream& operator<<(std::ostream& os, const TextTable& table);

  /// Formats a double with `digits` digits after the decimal point.
  static std::string fmt(double value, int digits = 3);

  /// Formats an integer.
  static std::string fmt(std::size_t value);
  static std::string fmt(long long value);

 private:
  static constexpr const char* kSeparatorMarker = "\x01sep";

  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace confcall::support
