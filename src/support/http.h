// Minimal dependency-free HTTP/1.1 server for the observability scrape
// endpoints — deliberately a scrape server, not a web framework.
//
// The serving daemon (tools/confcall_serve) needs four read-mostly
// routes (/metrics, /vars, /healthz, /traces) that a Prometheus scraper
// or a curl can hit while the locate loop runs. That workload shapes the
// design:
//
//   * POSIX sockets only, loopback by default. No TLS, no keep-alive,
//     no chunked encoding: one request per connection, `Connection:
//     close`, which every scraper and curl speaks.
//   * A blocking accept loop plus a small fixed worker set, all run as
//     one parallel_for on a support::ThreadPool (task 0 accepts, tasks
//     1..N serve), so the server reuses the existing pool machinery
//     instead of growing its own thread lifecycle code.
//   * Bounded connections: accepted sockets wait in a fixed-capacity
//     queue; when it is full the acceptor answers 503 immediately and
//     closes, so a scrape storm sheds instead of queueing unboundedly —
//     the same philosophy as the admission controller.
//   * Deadline-guarded reads: each connection gets a support::Deadline
//     for reading the request; a client that trickles bytes (or sends
//     nothing) is answered 408 and closed when it expires. Writes are
//     bounded by SO_SNDTIMEO.
//
// Handlers run on the worker tasks and must be thread-safe; the
// observability handlers only take registry/tracer snapshots, which are
// internally locked. stop() is a graceful drain: the listener closes
// first, already-accepted connections are still served, then the
// workers exit.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "support/metrics.h"
#include "support/overload.h"
#include "support/thread_pool.h"

namespace confcall::support {

class Tracer;
class AdmissionController;
class SloController;

/// One parsed request. Header names are lower-cased; values are
/// whitespace-trimmed.
struct HttpRequest {
  std::string method;  ///< upper-case, e.g. "GET"
  std::string path;    ///< target without the query string
  std::string query;   ///< after '?', may be empty
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// Case-insensitive header lookup; empty string when absent.
  [[nodiscard]] std::string header(const std::string& name) const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

[[nodiscard]] const char* http_status_reason(int status) noexcept;

struct HttpServerOptions {
  /// Loopback by default: the scrape surface is not an internet-facing
  /// server.
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral, read back via port()
  /// Handler tasks (>= 1); the accept loop adds one more pool task.
  std::size_t workers = 2;
  /// Accepted-but-unserved connection bound; beyond it the acceptor
  /// answers 503 and closes (>= 1).
  std::size_t max_pending_connections = 64;
  /// Per-connection budget for reading the full request (>= 1 ns).
  std::uint64_t read_deadline_ns = 2'000'000'000;
  /// Request size cap, head + body (>= 1; oversized requests get 431).
  std::size_t max_request_bytes = 1 << 16;

  /// Throws std::invalid_argument with a specific message per violation.
  void validate() const;
};

/// The server. Register routes, start(), scrape, stop(). Not copyable
/// or movable (worker tasks hold `this`).
class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  /// Throws std::invalid_argument on bad options.
  explicit HttpServer(HttpServerOptions options = {});
  ~HttpServer();  ///< stops and joins if still running
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers `handler` for exact (method, path) matches. Must be
  /// called before start(); throws std::logic_error afterwards. A path
  /// registered under a different method answers 405; an unknown path
  /// 404.
  void handle(const std::string& method, const std::string& path,
              Handler handler);

  /// Binds, listens, and launches the accept + worker tasks. Throws
  /// std::runtime_error (with errno text) when the socket setup fails,
  /// std::logic_error when already started.
  void start();

  /// Graceful drain: close the listener, serve what was already
  /// accepted, join every task. Idempotent.
  void stop();

  /// The bound port (resolves an ephemeral request); 0 before start().
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] bool running() const noexcept { return running_; }

  /// Requests answered by a handler (any status), and connections the
  /// full pending queue shed with an immediate 503.
  [[nodiscard]] std::uint64_t requests_served() const noexcept {
    return requests_served_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t connections_shed() const noexcept {
    return connections_shed_.load(std::memory_order_relaxed);
  }

  /// Registers the server's hostile-network counters on `registry` and
  /// binds them (see docs/OBSERVABILITY.md):
  ///   confcall_http_rejections_total{class=...}  one series per reject
  ///     class — malformed (400), slow_client (408), body_too_large
  ///     (413), header_too_large (431), queue_full (503);
  ///   confcall_http_send_failed_total  responses the peer stopped
  ///     reading mid-write (EPIPE/ECONNRESET/send timeout) — previously
  ///     swallowed silently.
  /// Call before start(); unbound handles no-op, so an unmetered server
  /// behaves identically. The registry must outlive the server.
  void bind_metrics(MetricRegistry& registry);

 private:
  void accept_loop();
  void worker_loop();
  void serve_connection(int fd);
  void count_rejection(int status) const noexcept;

  HttpServerOptions options_;
  std::map<std::pair<std::string, std::string>, Handler> routes_;
  std::atomic<int> listen_fd_{-1};
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::thread pool_thread_;  ///< runs the parallel_for hosting all tasks
  // Pending accepted sockets (bounded; -1 entries are stop sentinels).
  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::vector<int> pending_;
  std::atomic<std::uint64_t> requests_served_{0};
  std::atomic<std::uint64_t> connections_shed_{0};
  // Hostile-network telemetry (unbound until bind_metrics).
  Counter send_failed_metric_;
  Counter reject_malformed_;       ///< class="malformed"        (400)
  Counter reject_slow_client_;     ///< class="slow_client"      (408)
  Counter reject_body_too_large_;  ///< class="body_too_large"   (413)
  Counter reject_header_too_large_;  ///< class="header_too_large" (431)
  Counter reject_queue_full_;      ///< class="queue_full"       (503)
};

/// Readiness phases of a serving process, ordered by lifecycle. Only
/// kReady answers /readyz with 200 — a balancer holds traffic through
/// restore and warmup (warm restart) and releases the backend before
/// drain completes (graceful shutdown).
enum class Readiness {
  kStarting,   ///< process up, state not yet examined
  kRestoring,  ///< loading/validating a --state-in checkpoint
  kWarmup,     ///< serving loop warming (cold or warm) before steady state
  kReady,      ///< take traffic
  kDraining,   ///< shutting down; finish in-flight work, accept nothing new
};

[[nodiscard]] const char* readiness_name(Readiness state) noexcept;

/// Shared readiness flag between the serving loop (writer) and the
/// /readyz handler (reader). Plain atomic — transitions are rare and
/// monotonicity is the caller's business (a warm restart walks
/// kStarting -> kRestoring -> kWarmup -> kReady -> kDraining).
class ReadinessGate {
 public:
  void set(Readiness state) noexcept {
    state_.store(state, std::memory_order_release);
  }
  [[nodiscard]] Readiness state() const noexcept {
    return state_.load(std::memory_order_acquire);
  }
  [[nodiscard]] bool ready() const noexcept {
    return state() == Readiness::kReady;
  }

 private:
  std::atomic<Readiness> state_{Readiness::kStarting};
};

/// Extra knobs for install_observability_routes, all default-off so the
/// plain call keeps the exact exposition prior releases served.
struct ObservabilityOptions {
  /// Emit OpenMetrics exemplar suffixes (`# {trace_id="..."} value`) on
  /// /metrics _bucket samples. Off by default: the default scrape must
  /// stay byte-identical release over release (the E16 gate), and
  /// strict Prometheus-format consumers may not expect the suffix.
  bool exemplars = false;
  /// Extra JSON members for the /readyz body, rendered per request:
  /// return a fragment like `"areas_ready": 3, "areas_total": 8` (no
  /// surrounding braces) or an empty string. The fleet daemon reports
  /// per-area restore/warmup progress through this.
  std::function<std::string()> readyz_detail;
};

/// Wires the standard observability surface onto `server` (all GET):
///   /metrics  Prometheus text from ONE consistent registry snapshot.
///             Registers and maintains the confcall_scrape_bytes gauge
///             (the PREVIOUS scrape's payload size — set before
///             rendering so scrapes stay byte-identical to an
///             in-process render, the E16 contract). With
///             ObservabilityOptions::exemplars, _bucket samples carry
///             OpenMetrics exemplar suffixes.
///   /vars     the same snapshot as JSON
///   /healthz  a small JSON document: the admission health state, and —
///             when an SloController is attached — its verdict, target
///             vs observed p99 and the last window's shed fraction.
///             Status keeps the load-balancer mapping: 200 while
///             healthy/degraded, 503 while shedding; with a controller
///             the status ALSO flips to 503 on a "degrading" verdict
///             (projected breach) so traffic drains BEFORE the SLO is
///             broken, not after. No admission controller: always 200.
///   /readyz   readiness, distinct from /healthz liveness: 200 only in
///             the kReady phase, 503 during restore, warmup and drain —
///             the balancer signal that holds traffic through a warm
///             restart. Without a gate, /readyz is always 200 (a server
///             with no lifecycle is trivially ready). The JSON body can
///             carry caller-supplied members (the fleet daemon's
///             areas_ready/areas_total restore progress) through
///             ObservabilityOptions::readyz_detail.
///   /traces   recent sampled spans as Chrome trace_event JSON (no
///             tracer: an empty trace)
/// The pointees must outlive the server; registry is required.
/// Throws std::invalid_argument on a null registry.
void install_observability_routes(HttpServer& server,
                                  MetricRegistry* registry,
                                  Tracer* tracer = nullptr,
                                  AdmissionController* admission = nullptr,
                                  SloController* slo = nullptr,
                                  ReadinessGate* readiness = nullptr,
                                  ObservabilityOptions options = {});

/// A minimal blocking client for tests, benches and smoke checks: one
/// request, reads to connection close. Throws std::runtime_error on
/// connect/send/timeout failures.
struct HttpClientResponse {
  int status = 0;
  std::string body;
};
[[nodiscard]] HttpClientResponse http_request(
    const std::string& host, std::uint16_t port, const std::string& method,
    const std::string& target, const std::string& body = "",
    std::uint64_t timeout_ns = 5'000'000'000);
[[nodiscard]] HttpClientResponse http_get(
    const std::string& host, std::uint16_t port, const std::string& target,
    std::uint64_t timeout_ns = 5'000'000'000);

/// Hostile-client behaviours the fault injector can aim at a server.
/// Each class has a documented contract (the status the server must
/// answer, or a clean close) — see docs/DESIGN.md §13.
enum class SocketFaultClass {
  kTornWrite,          ///< request cut mid-bytes, half-closed -> 400
  kMidBodyDisconnect,  ///< full headers, partial body, half-closed -> 400
  kSlowLorisHeaders,   ///< byte-at-a-time headers, never finishing -> 408
  kOversizedHeaders,   ///< header block past max_request_bytes -> 431
  kOversizedBody,      ///< Content-Length past max_request_bytes -> 413
  kGarbagePipelining,  ///< binary garbage + pipelined junk -> 400
};

[[nodiscard]] const char* socket_fault_class_name(
    SocketFaultClass fault) noexcept;

inline constexpr SocketFaultClass kAllSocketFaultClasses[] = {
    SocketFaultClass::kTornWrite,       SocketFaultClass::kMidBodyDisconnect,
    SocketFaultClass::kSlowLorisHeaders, SocketFaultClass::kOversizedHeaders,
    SocketFaultClass::kOversizedBody,   SocketFaultClass::kGarbagePipelining,
};

/// A deterministic hostile HTTP client: connects to a real server and
/// misbehaves in one of the SocketFaultClass ways, then reports how the
/// server reacted. All randomness (cut points, garbage bytes) comes from
/// an internal splitmix64 stream seeded at construction, so a sweep with
/// the same seed sends byte-identical abuse — the fd-leak and
/// status-code invariants in the tests are reproducible, not flaky.
class SocketFaultInjector {
 public:
  explicit SocketFaultInjector(std::uint64_t seed) : state_(seed) {}

  struct Outcome {
    /// Status the server answered with; 0 when it closed without a
    /// response.
    int status = 0;
    /// The connection ended in an orderly FIN (recv saw EOF) rather
    /// than an error or an injector-side timeout.
    bool clean_close = false;
    /// Raw bytes received, for assertions on the response shape.
    std::string raw;
  };

  /// Runs one fault against host:port. `patience_ns` bounds how long
  /// the injector waits for the server's reaction (keep it above the
  /// server's read deadline for the slow-loris class). Throws
  /// std::runtime_error only on injector-side setup failures (socket /
  /// connect); everything the server does is reported in the Outcome.
  [[nodiscard]] Outcome run(const std::string& host, std::uint16_t port,
                            SocketFaultClass fault,
                            std::uint64_t patience_ns = 5'000'000'000);

 private:
  [[nodiscard]] std::uint64_t next_u64() noexcept;

  std::uint64_t state_;
};

}  // namespace confcall::support
