// Minimal dependency-free HTTP/1.1 server for the observability scrape
// endpoints — deliberately a scrape server, not a web framework.
//
// The serving daemon (tools/confcall_serve) needs four read-mostly
// routes (/metrics, /vars, /healthz, /traces) that a Prometheus scraper
// or a curl can hit while the locate loop runs. That workload shapes the
// design:
//
//   * POSIX sockets only, loopback by default. No TLS, no keep-alive,
//     no chunked encoding: one request per connection, `Connection:
//     close`, which every scraper and curl speaks.
//   * A blocking accept loop plus a small fixed worker set, all run as
//     one parallel_for on a support::ThreadPool (task 0 accepts, tasks
//     1..N serve), so the server reuses the existing pool machinery
//     instead of growing its own thread lifecycle code.
//   * Bounded connections: accepted sockets wait in a fixed-capacity
//     queue; when it is full the acceptor answers 503 immediately and
//     closes, so a scrape storm sheds instead of queueing unboundedly —
//     the same philosophy as the admission controller.
//   * Deadline-guarded reads: each connection gets a support::Deadline
//     for reading the request; a client that trickles bytes (or sends
//     nothing) is answered 408 and closed when it expires. Writes are
//     bounded by SO_SNDTIMEO.
//
// Handlers run on the worker tasks and must be thread-safe; the
// observability handlers only take registry/tracer snapshots, which are
// internally locked. stop() is a graceful drain: the listener closes
// first, already-accepted connections are still served, then the
// workers exit.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "support/overload.h"
#include "support/thread_pool.h"

namespace confcall::support {

class MetricRegistry;
class Tracer;
class AdmissionController;
class SloController;

/// One parsed request. Header names are lower-cased; values are
/// whitespace-trimmed.
struct HttpRequest {
  std::string method;  ///< upper-case, e.g. "GET"
  std::string path;    ///< target without the query string
  std::string query;   ///< after '?', may be empty
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// Case-insensitive header lookup; empty string when absent.
  [[nodiscard]] std::string header(const std::string& name) const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

[[nodiscard]] const char* http_status_reason(int status) noexcept;

struct HttpServerOptions {
  /// Loopback by default: the scrape surface is not an internet-facing
  /// server.
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral, read back via port()
  /// Handler tasks (>= 1); the accept loop adds one more pool task.
  std::size_t workers = 2;
  /// Accepted-but-unserved connection bound; beyond it the acceptor
  /// answers 503 and closes (>= 1).
  std::size_t max_pending_connections = 64;
  /// Per-connection budget for reading the full request (>= 1 ns).
  std::uint64_t read_deadline_ns = 2'000'000'000;
  /// Request size cap, head + body (>= 1; oversized requests get 431).
  std::size_t max_request_bytes = 1 << 16;

  /// Throws std::invalid_argument with a specific message per violation.
  void validate() const;
};

/// The server. Register routes, start(), scrape, stop(). Not copyable
/// or movable (worker tasks hold `this`).
class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  /// Throws std::invalid_argument on bad options.
  explicit HttpServer(HttpServerOptions options = {});
  ~HttpServer();  ///< stops and joins if still running
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers `handler` for exact (method, path) matches. Must be
  /// called before start(); throws std::logic_error afterwards. A path
  /// registered under a different method answers 405; an unknown path
  /// 404.
  void handle(const std::string& method, const std::string& path,
              Handler handler);

  /// Binds, listens, and launches the accept + worker tasks. Throws
  /// std::runtime_error (with errno text) when the socket setup fails,
  /// std::logic_error when already started.
  void start();

  /// Graceful drain: close the listener, serve what was already
  /// accepted, join every task. Idempotent.
  void stop();

  /// The bound port (resolves an ephemeral request); 0 before start().
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] bool running() const noexcept { return running_; }

  /// Requests answered by a handler (any status), and connections the
  /// full pending queue shed with an immediate 503.
  [[nodiscard]] std::uint64_t requests_served() const noexcept {
    return requests_served_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t connections_shed() const noexcept {
    return connections_shed_.load(std::memory_order_relaxed);
  }

 private:
  void accept_loop();
  void worker_loop();
  void serve_connection(int fd);

  HttpServerOptions options_;
  std::map<std::pair<std::string, std::string>, Handler> routes_;
  std::atomic<int> listen_fd_{-1};
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::thread pool_thread_;  ///< runs the parallel_for hosting all tasks
  // Pending accepted sockets (bounded; -1 entries are stop sentinels).
  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::vector<int> pending_;
  std::atomic<std::uint64_t> requests_served_{0};
  std::atomic<std::uint64_t> connections_shed_{0};
};

/// Wires the standard observability surface onto `server` (all GET):
///   /metrics  Prometheus text from ONE consistent registry snapshot
///   /vars     the same snapshot as JSON
///   /healthz  a small JSON document: the admission health state, and —
///             when an SloController is attached — its verdict, target
///             vs observed p99 and the last window's shed fraction.
///             Status keeps the load-balancer mapping: 200 while
///             healthy/degraded, 503 while shedding; with a controller
///             the status ALSO flips to 503 on a "degrading" verdict
///             (projected breach) so traffic drains BEFORE the SLO is
///             broken, not after. No admission controller: always 200.
///   /traces   recent sampled spans as Chrome trace_event JSON (no
///             tracer: an empty trace)
/// The pointees must outlive the server; registry is required.
/// Throws std::invalid_argument on a null registry.
void install_observability_routes(HttpServer& server,
                                  MetricRegistry* registry,
                                  Tracer* tracer = nullptr,
                                  AdmissionController* admission = nullptr,
                                  SloController* slo = nullptr);

/// A minimal blocking client for tests, benches and smoke checks: one
/// request, reads to connection close. Throws std::runtime_error on
/// connect/send/timeout failures.
struct HttpClientResponse {
  int status = 0;
  std::string body;
};
[[nodiscard]] HttpClientResponse http_request(
    const std::string& host, std::uint16_t port, const std::string& method,
    const std::string& target, const std::string& body = "",
    std::uint64_t timeout_ns = 5'000'000'000);
[[nodiscard]] HttpClientResponse http_get(
    const std::string& host, std::uint16_t port, const std::string& target,
    std::uint64_t timeout_ns = 5'000'000'000);

}  // namespace confcall::support
