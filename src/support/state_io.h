// Durable serving state: versioned, checksummed, atomically-written
// checkpoint files.
//
// The paper's delay constraint is only as good as the state the planner
// learns: sequential-paging performance hinges on the distribution
// knowledge accumulated at runtime (profiles, cached plans) and the SLO
// controller's converged actuator positions. A process restart that
// throws all of that away re-pays the whole convergence transient — many
// control periods of breached p99 — so the serving stack checkpoints its
// learned state and restores it on restart. This module is the file
// format under that contract:
//
//   * Atomic visibility. A checkpoint is written to `<path>.tmp.<pid>`,
//     flushed, then rename(2)d over the target, so a reader (including a
//     restarting self) only ever observes the previous complete file or
//     the new complete file — never a torn hybrid. A crash mid-write
//     leaves at worst a stale temp file, which the next writer replaces.
//   * Self-verifying. The header carries a magic tag, a format version,
//     the payload length and an FNV-1a checksum of the payload. Load
//     verifies all four before handing a single payload byte to a
//     deserializer; truncated, bit-flipped, version-skewed or
//     wrong-format files are reported as a typed StateLoadStatus, NEVER
//     thrown through or silently accepted. The caller's contract is a
//     counted cold start, not a crash.
//   * Sectioned. The payload is a sequence of named, individually
//     versioned sections (location service, SLO controller, ...). A
//     reader that finds its section missing or at an unknown version
//     cold-starts just that component; other sections stay usable. New
//     components append sections without breaking old readers.
//   * Deterministic bytes. Serialization is a pure function of the
//     logical state: fixed little-endian encoding, insertion-ordered
//     sections, no timestamps or pointers. Identical state produces
//     identical files on any thread count (the E19 byte-identity gate).
//
// The primitives (StateWriter / StateReader) are deliberately minimal:
// bounds-checked little-endian scalars, length-prefixed strings, and
// doubles as IEEE-754 bit patterns so round trips are exact to the bit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace confcall::support {

/// Thrown by StateReader on any out-of-bounds or malformed read. Always
/// caught at the component-restore boundary and converted into a cold
/// start; it never escapes a load_* entry point.
class StateFormatError : public std::runtime_error {
 public:
  explicit StateFormatError(const std::string& message)
      : std::runtime_error(message) {}
};

/// Append-only little-endian payload builder. All multi-byte values are
/// written least-significant byte first regardless of host order, and
/// doubles as their IEEE-754 bit pattern, so the bytes are a pure
/// function of the values.
class StateWriter {
 public:
  void put_u8(std::uint8_t value);
  void put_u32(std::uint32_t value);
  void put_u64(std::uint64_t value);
  /// Bit-exact: the double's representation, not a decimal rendering.
  void put_f64(double value);
  /// Length-prefixed (u64) byte string.
  void put_bytes(std::string_view bytes);

  [[nodiscard]] const std::string& bytes() const noexcept { return out_; }
  [[nodiscard]] std::string take() && { return std::move(out_); }

 private:
  std::string out_;
};

/// Bounds-checked reader over a payload produced by StateWriter. Every
/// read past the end (or a length prefix pointing past the end) throws
/// StateFormatError.
class StateReader {
 public:
  explicit StateReader(std::string_view bytes) : bytes_(bytes) {}

  [[nodiscard]] std::uint8_t get_u8();
  [[nodiscard]] std::uint32_t get_u32();
  [[nodiscard]] std::uint64_t get_u64();
  [[nodiscard]] double get_f64();
  [[nodiscard]] std::string_view get_bytes();

  /// get_u64 with an upper bound — for counts about to size containers,
  /// so a corrupt length cannot drive a multi-gigabyte allocation before
  /// the next bounds check would catch it.
  [[nodiscard]] std::uint64_t get_count(std::uint64_t max);

  [[nodiscard]] bool at_end() const noexcept {
    return pos_ == bytes_.size();
  }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return bytes_.size() - pos_;
  }

 private:
  void need(std::size_t n) const;

  std::string_view bytes_;
  std::size_t pos_ = 0;
};

/// One named, versioned unit of component state inside a bundle.
struct StateSection {
  std::string name;
  std::uint32_t version = 1;
  std::string payload;
};

/// The checkpoint's logical content: an ordered list of sections.
/// Components find their section by name and check its version
/// themselves; an unknown name or version means "cold-start me", not an
/// error for the bundle as a whole.
class StateBundle {
 public:
  /// Appends a section (insertion order is serialization order — keep it
  /// fixed so identical state yields identical bytes).
  void add(std::string name, std::uint32_t version, std::string payload);

  /// First section with this name; nullptr when absent.
  [[nodiscard]] const StateSection* find(std::string_view name) const;

  [[nodiscard]] const std::vector<StateSection>& sections() const noexcept {
    return sections_;
  }

  /// The bundle payload as bytes (no file header).
  [[nodiscard]] std::string serialize() const;

  /// Parses a payload. Throws StateFormatError on malformed bytes
  /// (callers inside load_state_file convert that to a status).
  [[nodiscard]] static StateBundle deserialize(std::string_view bytes);

 private:
  std::vector<StateSection> sections_;
};

/// Why a load did not produce a usable bundle. Every value except kOk is
/// a counted cold start for the caller.
enum class StateLoadStatus {
  kOk,
  kMissing,      ///< no file at the path (first boot: the normal cold start)
  kIoError,      ///< open/read failed for another reason
  kTruncated,    ///< shorter than the header or the declared payload
  kBadMagic,     ///< not a confcall state file
  kBadVersion,   ///< file-format version this build does not speak
  kBadChecksum,  ///< payload bytes do not match the header checksum
  kBadFormat,    ///< checksum fine but the section framing is malformed
};

[[nodiscard]] const char* state_load_status_name(
    StateLoadStatus status) noexcept;

struct StateLoadResult {
  StateLoadStatus status = StateLoadStatus::kIoError;
  StateBundle bundle;      ///< meaningful only when ok()
  std::string message;     ///< human-readable detail for logs
  [[nodiscard]] bool ok() const noexcept {
    return status == StateLoadStatus::kOk;
  }
};

/// The file-format version this build writes (and the only one it
/// reads). Bump on any header or framing change.
inline constexpr std::uint32_t kStateFileVersion = 1;

/// FNV-1a 64 over `bytes` — the header checksum. Exposed for tests that
/// forge corrupt files.
[[nodiscard]] std::uint64_t state_checksum(std::string_view bytes) noexcept;

/// Writes `contents` to `path` atomically: temp file in the same
/// directory (`<path>.tmp.<pid>`), fsync, rename over the target.
/// Returns false (with `error` filled when non-null) on any failure; the
/// target is never left torn — either the old file survives or the new
/// one is complete.
bool write_file_atomic(const std::string& path, std::string_view contents,
                       std::string* error = nullptr);

/// Serializes the bundle with the self-verifying header and writes it
/// atomically; returns the total file size in bytes. Throws
/// std::runtime_error on I/O failure (checkpointing callers catch and
/// count; startup callers usually want the throw).
std::size_t save_state_file(const std::string& path,
                            const StateBundle& bundle);

/// Loads and verifies a state file. NEVER throws on bad content: torn,
/// truncated, corrupt, version-skewed or garbage files come back as a
/// typed non-kOk status with a log-ready message.
[[nodiscard]] StateLoadResult load_state_file(const std::string& path);

}  // namespace confcall::support
